package transport

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// okHandler answers every request successfully.
type okHandler struct{}

func (okHandler) Handle(_ context.Context, req *Request) (*Response, error) {
	if req.Kind == KindInit || req.Kind == KindNext {
		return &Response{Exhausted: true}, nil
	}
	return &Response{}, nil
}

func TestInstrumentedClientCounts(t *testing.T) {
	reg := obs.NewRegistry()
	c := Instrumented(Local(okHandler{}), reg, "0")
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := c.Call(ctx, &Request{Kind: KindNext}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Call(ctx, &Request{Kind: KindEvaluate}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Call(ctx, &Request{Kind: KindNext}); err == nil {
		t.Fatal("closed client must fail")
	}

	if got := reg.Counter("dsud_rpc_requests_total", "site", "0", "kind", "next", "outcome", "ok").Value(); got != 3 {
		t.Fatalf("next ok = %d, want 3", got)
	}
	if got := reg.Counter("dsud_rpc_requests_total", "site", "0", "kind", "next", "outcome", "error").Value(); got != 1 {
		t.Fatalf("next error = %d, want 1", got)
	}
	if got := reg.Histogram("dsud_rpc_duration_seconds", nil, "site", "0", "kind", "evaluate").Snapshot().Count; got != 1 {
		t.Fatalf("evaluate latency observations = %d, want 1", got)
	}
	// Every successful or failed call was timed.
	if got := reg.Histogram("dsud_rpc_duration_seconds", nil, "site", "0", "kind", "next").Snapshot().Count; got != 4 {
		t.Fatalf("next latency observations = %d, want 4", got)
	}
}

func TestInstrumentedNilRegistryPassesThrough(t *testing.T) {
	inner := Local(okHandler{})
	if c := Instrumented(inner, nil, "0"); c != inner {
		t.Fatal("nil registry must return the inner client unchanged")
	}
}

func TestRetryStats(t *testing.T) {
	h := &seqCounter{}
	var mu sync.Mutex
	calls := 0
	dial := func() (Client, error) {
		return &lossyClient{h: h, mu: &mu, callCount: &calls, loseEvery: 3}, nil
	}
	reg := obs.NewRegistry()
	c := Retry(dial, 5).Observe(reg, "0")
	defer c.Close()

	// loseEvery counts transport-level calls, retries included: 9 logical
	// calls become 13 transport calls with losses at 3, 6, 9 and 12, so
	// four calls each need one retry on a redialled connection.
	const n = 9
	for i := 1; i <= n; i++ {
		if _, err := c.Call(context.Background(), &Request{Kind: KindNext}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	s := c.Stats()
	if s.Calls != n {
		t.Fatalf("calls = %d, want %d", s.Calls, n)
	}
	if s.Retries != 4 || s.Redials != 4 {
		t.Fatalf("retries/redials = %d/%d, want 4/4 (stats %+v)", s.Retries, s.Redials, s)
	}
	if s.Failures != 0 || s.DialErrors != 0 {
		t.Fatalf("unexpected failures in %+v", s)
	}
	// The registry mirror must agree.
	if got := reg.Counter("dsud_retry_retries_total", "site", "0").Value(); got != 4 {
		t.Fatalf("registry retries = %d, want 4", got)
	}
	if got := reg.Counter("dsud_retry_redials_total", "site", "0").Value(); got != 4 {
		t.Fatalf("registry redials = %d, want 4", got)
	}

	// Sub gives phase deltas.
	before := c.Stats()
	if _, err := c.Call(context.Background(), &Request{Kind: KindNext}); err != nil {
		t.Fatal(err)
	}
	d := c.Stats().Sub(before)
	if d.Calls != 1 {
		t.Fatalf("delta calls = %d, want 1", d.Calls)
	}
}

func TestRetryStatsExhaustion(t *testing.T) {
	dial := func() (Client, error) { return nil, errLinkDown }
	c := Retry(dial, 3)
	defer c.Close()
	if _, err := c.Call(context.Background(), &Request{Kind: KindNext}); err == nil {
		t.Fatal("want failure")
	}
	s := c.Stats()
	if s.Failures != 1 {
		t.Fatalf("failures = %d, want 1", s.Failures)
	}
	if s.DialErrors != 3 {
		t.Fatalf("dial errors = %d, want 3", s.DialErrors)
	}
	if s.Retries != 2 {
		t.Fatalf("retries = %d, want 2 (attempts 2 and 3)", s.Retries)
	}
}

// TestMeterExposed checks the registry mirror of the bandwidth meter
// reads live values, including across Reset.
func TestMeterExposed(t *testing.T) {
	reg := obs.NewRegistry()
	m := &Meter{}
	ExposeMeter(reg, m)
	m.Account(&Request{Kind: KindEvaluate}, &Response{})
	m.AddBytes(100)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"dsud_transport_tuples_down_total 1",
		"dsud_transport_messages_total 1",
		"dsud_transport_bytes_total 100",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, sb.String())
		}
	}
	m.Reset()
	sb.Reset()
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "dsud_transport_bytes_total 0") {
		t.Errorf("Reset must be visible at the next scrape:\n%s", sb.String())
	}
}
