package transport

import (
	"context"
	"sync/atomic"
)

// Meter accumulates the paper's communication metrics. Bandwidth is
// measured in tuples transmitted (§3.2: synchronisation messages and
// headers are excluded); message and byte counts are kept as secondary
// diagnostics. Meter is safe for concurrent use and its zero value is
// ready.
type Meter struct {
	tuplesUp   atomic.Int64 // site → coordinator
	tuplesDown atomic.Int64 // coordinator → site
	messages   atomic.Int64
	bytes      atomic.Int64
}

// Snapshot is a point-in-time copy of a Meter.
type Snapshot struct {
	// TuplesUp counts tuples shipped from sites to the coordinator
	// (representatives, baseline partitions, promotion candidates).
	TuplesUp int64
	// TuplesDown counts tuples shipped from the coordinator to sites
	// (feedback broadcasts, update notifications).
	TuplesDown int64
	// Messages counts protocol round trips.
	Messages int64
	// Bytes counts wire bytes where the transport can observe them (TCP);
	// zero for the in-process transport.
	Bytes int64
}

// Tuples is the paper's headline bandwidth metric: total tuples
// transmitted in either direction.
func (s Snapshot) Tuples() int64 { return s.TuplesUp + s.TuplesDown }

// Sub returns the delta s − earlier, for measuring a phase.
func (s Snapshot) Sub(earlier Snapshot) Snapshot {
	return Snapshot{
		TuplesUp:   s.TuplesUp - earlier.TuplesUp,
		TuplesDown: s.TuplesDown - earlier.TuplesDown,
		Messages:   s.Messages - earlier.Messages,
		Bytes:      s.Bytes - earlier.Bytes,
	}
}

// Snapshot returns the current counter values.
func (m *Meter) Snapshot() Snapshot {
	return Snapshot{
		TuplesUp:   m.tuplesUp.Load(),
		TuplesDown: m.tuplesDown.Load(),
		Messages:   m.messages.Load(),
		Bytes:      m.bytes.Load(),
	}
}

// Reset zeroes all counters.
func (m *Meter) Reset() {
	m.tuplesUp.Store(0)
	m.tuplesDown.Store(0)
	m.messages.Store(0)
	m.bytes.Store(0)
}

// AddBytes records transport-observed wire bytes.
func (m *Meter) AddBytes(n int64) { m.bytes.Add(n) }

// Account records the tuple and message cost of one completed call. The
// rules implement the paper's accounting exactly:
//
//   - every Representative returned by Init/Next costs one up-tuple;
//   - every Evaluate request ships the feedback tuple down (one per site
//     contacted, so a broadcast to m−1 sites costs m−1);
//   - ShipAll and Candidates responses cost one up-tuple each;
//   - Insert/Delete requests ship one tuple of update traffic down only
//     when they originate remotely (the caller decides by using a metered
//     client or not);
//   - probability scalars, prune counts and sizes ride for free, like the
//     paper's headers.
func (m *Meter) Account(req *Request, resp *Response) {
	m.messages.Add(1)
	switch req.Kind {
	case KindInit, KindNext:
		if resp != nil && !resp.Exhausted {
			m.tuplesUp.Add(1)
		}
	case KindEvaluate:
		m.tuplesDown.Add(1)
	case KindShipAll, KindCandidates:
		if resp != nil {
			m.tuplesUp.Add(int64(len(resp.Tuples)))
		}
		if req.Kind == KindCandidates {
			// The deletion notice itself carries one tuple downstream.
			m.tuplesDown.Add(1)
		}
	case KindInsert, KindDelete:
		m.tuplesDown.Add(1)
	case KindReplicate:
		// Replica adds travel downstream as whole tuples; removals are
		// IDs and ride free like headers.
		m.tuplesDown.Add(int64(len(req.Tuples)))
	case KindSynopsis:
		// Each occupied histogram bucket is one tuple-equivalent record.
		if resp != nil && resp.Synopsis != nil {
			m.tuplesUp.Add(int64(resp.Synopsis.NonEmptyCells()))
		}
	}
}

// Metered wraps a Client so every successful call is accounted against
// m. When the inner client attributes wire bytes per request
// (ByteReporter, i.e. the v2 mux transport), those bytes are credited
// to m as well, and the wrapper itself implements ByteReporter so
// stacked meters (cluster-wide under per-query) each see exact bytes.
func Metered(c Client, m *Meter) Client {
	return &meteredClient{inner: c, meter: m}
}

type meteredClient struct {
	inner Client
	meter *Meter
}

func (c *meteredClient) Call(ctx context.Context, req *Request) (*Response, error) {
	resp, _, err := c.CallBytes(ctx, req)
	return resp, err
}

func (c *meteredClient) CallBytes(ctx context.Context, req *Request) (*Response, int64, error) {
	resp, n, err := callBytes(c.inner, ctx, req)
	if err == nil {
		c.meter.Account(req, resp)
		if n > 0 {
			// v1 clients report zero here; their bytes are counted at
			// the socket instead (countingReader/Writer), so there is
			// exactly one byte path per transport generation.
			c.meter.AddBytes(n)
		}
	}
	return resp, n, err
}

func (c *meteredClient) Close() error { return c.inner.Close() }

// Unwrap exposes the inner client so optional interfaces (telemetry
// subscription) are discoverable through the wrapper.
func (c *meteredClient) Unwrap() Client { return c.inner }
