package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/uncertain"
)

// echoHandler returns canned responses and records requests.
type echoHandler struct {
	mu   sync.Mutex
	seen []Kind
	resp Response
	err  error
}

func (h *echoHandler) Handle(_ context.Context, req *Request) (*Response, error) {
	h.mu.Lock()
	h.seen = append(h.seen, req.Kind)
	h.mu.Unlock()
	if h.err != nil {
		return nil, h.err
	}
	resp := h.resp
	return &resp, nil
}

func (h *echoHandler) kinds() []Kind {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Kind(nil), h.seen...)
}

func sampleTuple(id uncertain.TupleID) uncertain.Tuple {
	return uncertain.Tuple{ID: id, Point: geom.Point{1.5, 2.5}, Prob: 0.75}
}

func TestQueryValidate(t *testing.T) {
	good := Query{Threshold: 0.3}
	if err := good.Validate(3); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	if err := (Query{Threshold: 0.3, Dims: []int{0, 2}}).Validate(3); err != nil {
		t.Errorf("valid subspace rejected: %v", err)
	}
	bad := []Query{
		{Threshold: 0},
		{Threshold: 1.2},
		{Threshold: -1},
		{Threshold: 0.3, Dims: []int{3}},
		{Threshold: 0.3, Dims: []int{}},
		{Threshold: 0.3, Dims: []int{1, 1}},
	}
	for i, q := range bad {
		if err := q.Validate(3); err == nil {
			t.Errorf("case %d: query %+v must be rejected", i, q)
		}
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindInit, KindNext, KindEvaluate, KindShipAll, KindInsert, KindDelete, KindCandidates, KindLocalSkylineSize}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has empty/duplicate string %q", int(k), s)
		}
		seen[s] = true
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind must still render")
	}
}

func TestLocalClient(t *testing.T) {
	h := &echoHandler{resp: Response{Size: 7}}
	c := Local(h)
	resp, err := c.Call(context.Background(), &Request{Kind: KindLocalSkylineSize})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Size != 7 {
		t.Fatalf("Size = %d, want 7", resp.Size)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(context.Background(), &Request{Kind: KindNext}); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after close = %v, want ErrClosed", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Local(h).Call(ctx, &Request{Kind: KindNext}); err == nil {
		t.Fatal("cancelled context must fail")
	}
}

func TestMeterAccounting(t *testing.T) {
	var m Meter
	rep := Representative{Tuple: sampleTuple(1), LocalProb: 0.5}

	m.Account(&Request{Kind: KindInit}, &Response{Rep: rep})
	m.Account(&Request{Kind: KindNext}, &Response{Rep: rep})
	m.Account(&Request{Kind: KindNext}, &Response{Exhausted: true})
	m.Account(&Request{Kind: KindEvaluate}, &Response{CrossProb: 1})
	m.Account(&Request{Kind: KindShipAll}, &Response{Tuples: []Representative{rep, rep, rep}})
	m.Account(&Request{Kind: KindCandidates}, &Response{Tuples: []Representative{rep}})
	m.Account(&Request{Kind: KindInsert}, &Response{})
	m.Account(&Request{Kind: KindDelete}, &Response{})
	m.Account(&Request{Kind: KindLocalSkylineSize}, &Response{Size: 3})

	s := m.Snapshot()
	if s.Messages != 9 {
		t.Errorf("Messages = %d, want 9", s.Messages)
	}
	// Up: init(1) + next(1) + exhausted(0) + shipall(3) + candidates(1) = 6
	if s.TuplesUp != 6 {
		t.Errorf("TuplesUp = %d, want 6", s.TuplesUp)
	}
	// Down: evaluate(1) + candidates notice(1) + insert(1) + delete(1) = 4
	if s.TuplesDown != 4 {
		t.Errorf("TuplesDown = %d, want 4", s.TuplesDown)
	}
	if s.Tuples() != 10 {
		t.Errorf("Tuples = %d, want 10", s.Tuples())
	}

	delta := m.Snapshot().Sub(s)
	if delta.Tuples() != 0 || delta.Messages != 0 {
		t.Errorf("Sub of identical snapshots = %+v, want zeroes", delta)
	}
	m.Reset()
	if got := m.Snapshot(); got.Tuples() != 0 || got.Messages != 0 || got.Bytes != 0 {
		t.Errorf("Reset left %+v", got)
	}
}

func TestMeteredClient(t *testing.T) {
	var m Meter
	h := &echoHandler{resp: Response{Rep: Representative{Tuple: sampleTuple(1)}}}
	c := Metered(Local(h), &m)
	if _, err := c.Call(context.Background(), &Request{Kind: KindNext}); err != nil {
		t.Fatal(err)
	}
	if m.Snapshot().TuplesUp != 1 {
		t.Fatal("metered call not accounted")
	}
	// Errors must not be accounted.
	h.err = errors.New("boom")
	if _, err := c.Call(context.Background(), &Request{Kind: KindNext}); err == nil {
		t.Fatal("handler error must propagate")
	}
	if got := m.Snapshot().Messages; got != 1 {
		t.Fatalf("failed call accounted: messages = %d", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func startServer(t *testing.T, h Handler, meter *Meter) (addr string, srv *Server) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv = NewServer(h, meter)
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })
	return lis.Addr().String(), srv
}

func TestTCPRoundTrip(t *testing.T) {
	want := Response{
		Rep:       Representative{Tuple: sampleTuple(42), LocalProb: 0.625},
		CrossProb: 0.5,
		Pruned:    3,
		Tuples:    []Representative{{Tuple: sampleTuple(7), LocalProb: 0.9}},
		Size:      11,
	}
	h := &echoHandler{resp: want}
	var meter Meter
	addr, _ := startServer(t, h, nil)
	c, err := Dial(addr, &meter)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	req := &Request{
		Kind:  KindEvaluate,
		Query: Query{Threshold: 0.3, Dims: []int{0, 1}},
		Feed:  Feedback{Tuple: sampleTuple(42), HomeLocalProb: 0.625},
		Tuple: sampleTuple(1),
		ID:    9,
		Point: geom.Point{3, 4},
	}
	got, err := c.Call(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rep.Tuple.ID != 42 || got.Rep.LocalProb != 0.625 || got.CrossProb != 0.5 ||
		got.Pruned != 3 || len(got.Tuples) != 1 || got.Tuples[0].Tuple.ID != 7 || got.Size != 11 {
		t.Fatalf("round trip mangled response: %+v", got)
	}
	if !got.Rep.Tuple.Point.Equal(geom.Point{1.5, 2.5}) {
		t.Fatalf("point mangled: %v", got.Rep.Tuple.Point)
	}
	if meter.Snapshot().Bytes == 0 {
		t.Error("client meter should observe wire bytes")
	}
	// Sequential calls on the same connection.
	for i := 0; i < 5; i++ {
		if _, err := c.Call(context.Background(), &Request{Kind: KindNext}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if kinds := h.kinds(); len(kinds) != 6 {
		t.Fatalf("server saw %d requests, want 6", len(kinds))
	}
}

// blockingHandler parks every request until released, signalling entry.
type blockingHandler struct {
	entered chan struct{}
	release chan struct{}
}

func (h *blockingHandler) Handle(_ context.Context, _ *Request) (*Response, error) {
	h.entered <- struct{}{}
	<-h.release
	return &Response{Size: 99}, nil
}

// Shutdown must let an in-flight request finish and answer, then close
// the connection, while idle connections are released immediately.
func TestServerShutdownDrainsInFlight(t *testing.T) {
	h := &blockingHandler{entered: make(chan struct{}, 1), release: make(chan struct{})}
	addr, srv := startServer(t, h, nil)

	busy, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()
	// A second connection stays idle — its server goroutine is parked in
	// Decode and Shutdown must wake it without waiting.
	idle, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	type result struct {
		resp *Response
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := busy.Call(context.Background(), &Request{Kind: KindNext})
		got <- result{resp, err}
	}()
	<-h.entered // the request is now inside the handler

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Shutdown must be waiting on the in-flight handler, not killing it.
	select {
	case r := <-got:
		t.Fatalf("call finished before release: %+v", r)
	case <-time.After(50 * time.Millisecond):
	}
	close(h.release)
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight call failed during drain: %v", r.err)
	}
	if r.resp.Size != 99 {
		t.Fatalf("in-flight response = %+v", r.resp)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The drained server accepts nothing new.
	if _, err := Dial(addr, nil); err == nil {
		t.Fatal("dial after shutdown must fail")
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown must be a no-op: %v", err)
	}
}

// Shutdown with an expired context falls back to a hard close and
// reports the context error.
func TestServerShutdownTimeout(t *testing.T) {
	h := &blockingHandler{entered: make(chan struct{}, 1), release: make(chan struct{})}
	addr, srv := startServer(t, h, nil)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go c.Call(context.Background(), &Request{Kind: KindNext})
	<-h.entered

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err = srv.Shutdown(ctx)
	close(h.release) // unblock the handler goroutine so wg.Wait returns
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown err = %v, want deadline exceeded", err)
	}
}

func TestTCPHandlerError(t *testing.T) {
	h := &echoHandler{err: errors.New("site exploded")}
	addr, _ := startServer(t, h, nil)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call(context.Background(), &Request{Kind: KindNext})
	if err == nil || err.Error() != "site exploded" {
		t.Fatalf("err = %v, want handler error text", err)
	}
	// The connection survives handler errors.
	h.err = nil
	if _, err := c.Call(context.Background(), &Request{Kind: KindNext}); err != nil {
		t.Fatalf("connection should survive a handler error: %v", err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	h := &echoHandler{resp: Response{Size: 1}}
	addr, _ := startServer(t, h, nil)
	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr, nil)
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			for k := 0; k < 20; k++ {
				if _, err := c.Call(context.Background(), &Request{Kind: KindNext}); err != nil {
					errs[i] = fmt.Errorf("call %d: %w", k, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if got := len(h.kinds()); got != clients*20 {
		t.Fatalf("server saw %d calls, want %d", got, clients*20)
	}
}

func TestTCPCancellation(t *testing.T) {
	block := make(chan struct{})
	h := handlerFunc(func(context.Context, *Request) (*Response, error) {
		<-block
		return &Response{}, nil
	})
	addr, _ := startServer(t, h, nil)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Call(ctx, &Request{Kind: KindNext})
	close(block)
	if err == nil {
		t.Fatal("blocked call must fail on cancellation")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation took too long")
	}
}

type handlerFunc func(context.Context, *Request) (*Response, error)

func (f handlerFunc) Handle(ctx context.Context, req *Request) (*Response, error) {
	return f(ctx, req)
}

func TestTCPClientClose(t *testing.T) {
	h := &echoHandler{resp: Response{}}
	addr, _ := startServer(t, h, nil)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal("double close must be idempotent")
	}
	if _, err := c.Call(context.Background(), &Request{Kind: KindNext}); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after close = %v, want ErrClosed", err)
	}
}

func TestServerClose(t *testing.T) {
	h := &echoHandler{resp: Response{}}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(h, nil)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	c, err := Dial(lis.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(context.Background(), &Request{Kind: KindNext}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after Close", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	if err := srv.Close(); err != nil {
		t.Fatal("double close must be idempotent")
	}
	// Calls against the closed server fail.
	if _, err := c.Call(context.Background(), &Request{Kind: KindNext}); err == nil {
		t.Fatal("call against closed server must fail")
	}
	c.Close()
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", nil); err == nil {
		t.Skip("port 1 unexpectedly open")
	}
}

func TestDelayedClient(t *testing.T) {
	h := &echoHandler{resp: Response{Size: 1}}
	c := Delayed(Local(h), 30*time.Millisecond)
	start := time.Now()
	if _, err := c.Call(context.Background(), &Request{Kind: KindNext}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("latency not applied: %v", elapsed)
	}
	// Cancellation during the simulated flight time.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := c.Call(ctx, &Request{Kind: KindNext}); err == nil {
		t.Fatal("cancelled in-flight call must fail")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Zero latency passes through unwrapped.
	plain := Delayed(Local(h), 0)
	if _, ok := plain.(*delayedClient); ok {
		t.Fatal("zero latency should not wrap")
	}
}
