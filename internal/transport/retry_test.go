package transport

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// lossyClient executes the call against the handler but "loses" the
// response for scripted attempts, simulating a connection that dies after
// the site processed the request — the nasty case for non-idempotent
// operations.
type lossyClient struct {
	h         Handler
	mu        *sync.Mutex
	callCount *int
	loseEvery int
	dead      bool
}

var errLinkDown = errors.New("simulated link failure")

func (c *lossyClient) Call(ctx context.Context, req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return nil, errLinkDown
	}
	*c.callCount++
	resp, err := c.h.Handle(ctx, req)
	if c.loseEvery > 0 && *c.callCount%c.loseEvery == 0 {
		c.dead = true // this "connection" is gone; response lost in flight
		return nil, errLinkDown
	}
	return resp, err
}

func (c *lossyClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dead = true
	return nil
}

// seqCounter is a handler that increments on every *executed* request and
// implements the sites' dedup contract for sequenced requests.
type seqCounter struct {
	executed int
	lastSeq  uint64
	lastResp *Response
}

func (h *seqCounter) Handle(_ context.Context, req *Request) (*Response, error) {
	if req.Seq != 0 && req.Seq == h.lastSeq {
		return h.lastResp, nil
	}
	h.executed++
	resp := &Response{Size: h.executed}
	if req.Seq != 0 {
		h.lastSeq, h.lastResp = req.Seq, resp
	}
	return resp, nil
}

func TestRetryRedialsAndDedups(t *testing.T) {
	h := &seqCounter{}
	var mu sync.Mutex
	calls := 0
	dial := func() (Client, error) {
		return &lossyClient{h: h, mu: &mu, callCount: &calls, loseEvery: 3}, nil
	}
	c := Retry(dial, 5)
	defer c.Close()

	const n = 20
	for i := 1; i <= n; i++ {
		resp, err := c.Call(context.Background(), &Request{Kind: KindNext})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		// Exactly-once: despite every third transport call losing its
		// response, the handler must have executed each request once.
		if resp.Size != i {
			t.Fatalf("call %d executed %d times total (dedup broken)", i, resp.Size)
		}
	}
	if h.executed != n {
		t.Fatalf("handler executed %d requests, want %d", h.executed, n)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	dial := func() (Client, error) { return nil, errLinkDown }
	c := Retry(dial, 3)
	defer c.Close()
	_, err := c.Call(context.Background(), &Request{Kind: KindNext})
	if err == nil || !errors.Is(err, errLinkDown) {
		t.Fatalf("err = %v, want wrapped link failure", err)
	}
}

func TestRetryRespectsCancellation(t *testing.T) {
	h := &seqCounter{}
	var mu sync.Mutex
	calls := 0
	dial := func() (Client, error) {
		return &lossyClient{h: h, mu: &mu, callCount: &calls, loseEvery: 1}, nil
	}
	c := Retry(dial, 1000)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Call(ctx, &Request{Kind: KindNext})
	if err == nil {
		t.Fatal("forever-failing transport must eventually error")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation not honoured")
	}
}

func TestRetryCloseIsTerminal(t *testing.T) {
	h := &seqCounter{}
	var mu sync.Mutex
	calls := 0
	dial := func() (Client, error) {
		return &lossyClient{h: h, mu: &mu, callCount: &calls}, nil
	}
	c := Retry(dial, 2)
	if _, err := c.Call(context.Background(), &Request{Kind: KindNext}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(context.Background(), &Request{Kind: KindNext}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestRetryMinimumAttempts(t *testing.T) {
	h := &seqCounter{}
	var mu sync.Mutex
	calls := 0
	dial := func() (Client, error) {
		return &lossyClient{h: h, mu: &mu, callCount: &calls}, nil
	}
	c := Retry(dial, 0) // clamps to 1
	defer c.Close()
	if _, err := c.Call(context.Background(), &Request{Kind: KindNext}); err != nil {
		t.Fatal(err)
	}
}
