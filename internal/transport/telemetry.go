package transport

// Server→client telemetry push over wire v2. A coordinator subscribes on
// its existing mux connection (FrameSubscribe) and the site then pushes
// one delta-encoded codec.Telemetry snapshot per interval
// (FrameTelemetry) until the subscription is cancelled (FrameCancel on
// the subscription ID) or the connection dies. Pushes share the
// connection's write path with responses, so a subscription costs no
// extra socket — and because unknown frame types are ignorable padding
// on both ends, every combination of old and new peers degrades to
// "no telemetry" rather than an error.
//
// The publisher runs once per subscription on the site and its per-push
// path is allocation-free at steady state (TestTelemetryPublisherZeroAlloc
// pins it): the source fills a reused snapshot, the delta encoder writes
// into a reused buffer, and the frame goes out under the shared write
// mutex.

import (
	"context"
	"errors"
	"io"
	"sync"
	"time"

	"repro/internal/codec"
)

// DefTelemetryInterval is the push cadence when the subscriber does not
// request one: frequent enough for a live dashboard, cheap enough to
// leave on (one small frame per second).
const DefTelemetryInterval = time.Second

// MinTelemetryInterval floors what a subscriber may request, so a
// hostile or buggy coordinator cannot make a site busy-spin encoding
// telemetry.
const MinTelemetryInterval = 100 * time.Millisecond

// telemetryFullEvery re-anchors the delta stream with a self-contained
// snapshot every n-th push (and on the first), bounding how long a
// subscriber that dropped one frame stays blind.
const telemetryFullEvery = 16

// ErrTelemetryUnsupported reports that a client (or the peer behind it)
// cannot deliver telemetry pushes — a v1 gob connection, an in-process
// client, or a wrapper hiding one.
var ErrTelemetryUnsupported = errors.New("transport: telemetry not supported by this client")

// TelemetrySource fills one telemetry snapshot with the site's current
// state. FillTelemetry must be safe for concurrent use (one publisher
// goroutine runs per subscription) and should reuse t's slices — the
// publisher's zero-allocation guarantee is only as good as its source.
// Seq and WallNano are owned by the publisher; sources must leave them.
type TelemetrySource interface {
	FillTelemetry(t *codec.Telemetry)
}

// TelemetrySubscriber is the optional Client extension for transports
// that can stream telemetry pushes. Wrappers forward it via Unwrap;
// use the package-level SubscribeTelemetry to reach through a stack.
type TelemetrySubscriber interface {
	Client
	// SubscribeTelemetry asks the peer to push one snapshot per interval
	// (0 selects the server default), invoking fn from the demux
	// goroutine for each decoded snapshot. The *codec.Telemetry passed to
	// fn is reused between pushes: fn must copy what it keeps. The
	// returned cancel stops the stream (idempotent).
	SubscribeTelemetry(interval time.Duration, fn func(*codec.Telemetry)) (cancel func(), err error)
}

// Unwrapper lets client wrappers expose their inner client so optional
// interfaces (TelemetrySubscriber) can be discovered through a stack of
// Metered/Instrumented/Delayed decorators.
type Unwrapper interface {
	Unwrap() Client
}

// SubscribeTelemetry subscribes through an arbitrary client stack: it
// walks Unwrap chains and live RetryClient connections until it finds a
// TelemetrySubscriber, and fails with ErrTelemetryUnsupported when the
// stack bottoms out in a transport that cannot push (v1 gob, Local).
// The subscription is bound to the connection that was live at call
// time; after a redial the caller must subscribe again (staleness-driven
// resubscription is the aggregator's job, see core.ClusterTelemetry).
func SubscribeTelemetry(cl Client, interval time.Duration, fn func(*codec.Telemetry)) (func(), error) {
	for cl != nil {
		switch c := cl.(type) {
		case TelemetrySubscriber:
			return c.SubscribeTelemetry(interval, fn)
		case *RetryClient:
			inner, err := c.Current()
			if err != nil {
				return nil, err
			}
			cl = inner
		case Unwrapper:
			cl = c.Unwrap()
		default:
			return nil, ErrTelemetryUnsupported
		}
	}
	return nil, ErrTelemetryUnsupported
}

// TelemetryStats is a point-in-time view of a server's telemetry
// publishers, surfaced through SiteStatus so the pull plane (/statusz,
// -cluster-status) can see the push plane's health.
type TelemetryStats struct {
	// Subscribers is the number of live telemetry subscriptions.
	Subscribers int `json:"subscribers"`
	// Pushes counts telemetry frames sent since process start.
	Pushes uint64 `json:"pushes"`
	// LastPushUnixNano stamps the most recent push (0 = never).
	LastPushUnixNano int64 `json:"last_push_unix_nano"`
}

// SetTelemetrySource wires the server's telemetry publishers to src.
// Until it is called (or with a nil src) FrameSubscribe is ignored and
// subscribers simply see no pushes — the same silent degradation an old
// binary gives. Call before Serve.
func (s *Server) SetTelemetrySource(src TelemetrySource) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.telemetrySource = src
}

// TelemetryStats reports current publisher-side telemetry counters.
// Cheap enough for status handlers; safe for concurrent use.
func (s *Server) TelemetryStats() TelemetryStats {
	return TelemetryStats{
		Subscribers:      int(s.telemetrySubs.Load()),
		Pushes:           s.telemetryPushes.Load(),
		LastPushUnixNano: s.telemetryLastPush.Load(),
	}
}

// muxWriter serialises every frame write on one v2 connection: response
// frames (whose gob encoding must happen in write order under the same
// lock) and telemetry pushes. The frame buffer is reused across writes.
type muxWriter struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
}

// writeFrame frames payload and writes it. The payload is built by the
// caller outside the lock, so publishers encoding large snapshots do not
// stall response writes.
func (mw *muxWriter) writeFrame(t codec.FrameType, id uint64, payload []byte) error {
	mw.mu.Lock()
	mw.buf = codec.AppendFrame(mw.buf[:0], t, id, payload)
	_, err := mw.w.Write(mw.buf)
	mw.mu.Unlock()
	return err
}

// telemetryPublisher is one subscription's push state: double-buffered
// snapshots (so the previous push stays intact as the delta base while
// the next is filled) and a reused payload buffer.
type telemetryPublisher struct {
	src     TelemetrySource
	mw      *muxWriter
	id      uint64
	seq     uint64
	cur     *codec.Telemetry
	prev    *codec.Telemetry
	payload []byte
}

func newTelemetryPublisher(src TelemetrySource, mw *muxWriter, id uint64) *telemetryPublisher {
	return &telemetryPublisher{
		src: src, mw: mw, id: id,
		cur:  &codec.Telemetry{},
		prev: &codec.Telemetry{},
	}
}

// push fills, encodes and writes one snapshot. Allocation-free once the
// buffers are warm.
func (p *telemetryPublisher) push(now int64) error {
	t := p.cur
	p.src.FillTelemetry(t)
	p.seq++
	t.Seq = p.seq
	t.WallNano = now
	prev := p.prev
	if p.seq%telemetryFullEvery == 1 {
		prev = nil // periodic self-contained re-anchor (and the opening push)
	}
	p.payload = codec.AppendTelemetry(p.payload[:0], t, prev)
	err := p.mw.writeFrame(codec.FrameTelemetry, p.id, p.payload)
	p.cur, p.prev = p.prev, p.cur
	return err
}

// runTelemetryPublisher drives one subscription until ctx is cancelled
// (FrameCancel, connection teardown, drain) or a write fails. The first
// snapshot goes out immediately so a fresh subscriber renders within one
// round trip, not one interval.
func (s *Server) runTelemetryPublisher(ctx context.Context, mw *muxWriter, id uint64, interval time.Duration, src TelemetrySource) {
	if interval <= 0 {
		interval = DefTelemetryInterval
	}
	if interval < MinTelemetryInterval {
		interval = MinTelemetryInterval
	}
	s.telemetrySubs.Add(1)
	defer s.telemetrySubs.Add(-1)
	p := newTelemetryPublisher(src, mw, id)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		now := time.Now().UnixNano()
		if p.push(now) != nil {
			return // the connection is dying; its read loop will notice too
		}
		s.telemetryPushes.Add(1)
		s.telemetryLastPush.Store(now)
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}
