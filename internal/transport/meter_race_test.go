package transport

import (
	"sync"
	"testing"
)

// TestMeterConcurrency hammers one Meter from parallel writers while
// readers snapshot it, then checks the exact totals. Run with -race.
func TestMeterConcurrency(t *testing.T) {
	const (
		writers = 8
		perW    = 2000
	)
	m := &Meter{}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := m.Snapshot()
				// Tuples never outrun messages: every accounted call adds
				// one message and at most one tuple in these writers.
				if s.Tuples() > s.Messages {
					t.Errorf("snapshot tearing: tuples %d > messages %d", s.Tuples(), s.Messages)
					return
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				switch i % 3 {
				case 0:
					m.Account(&Request{Kind: KindNext}, &Response{}) // up-tuple
				case 1:
					m.Account(&Request{Kind: KindEvaluate}, nil) // down-tuple
				case 2:
					m.Account(&Request{Kind: KindNext}, &Response{Exhausted: true})
				}
				m.AddBytes(3)
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	s := m.Snapshot()
	want := int64(writers * perW)
	if s.Messages != want {
		t.Fatalf("messages = %d, want %d", s.Messages, want)
	}
	// Per writer: cases 0 and 1 add one tuple each, case 2 adds none.
	perWriterTuples := int64((perW+2)/3 + (perW+1)/3)
	if got := s.Tuples(); got != perWriterTuples*writers {
		t.Fatalf("tuples = %d, want %d", got, perWriterTuples*writers)
	}
	if s.Bytes != 3*want {
		t.Fatalf("bytes = %d, want %d", s.Bytes, 3*want)
	}

	m.Reset()
	if z := m.Snapshot(); z != (Snapshot{}) {
		t.Fatalf("after Reset: %+v", z)
	}
}
