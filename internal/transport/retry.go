package transport

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// DialFunc opens a fresh connection to a site.
type DialFunc func() (Client, error)

// Retry wraps a redialing, retrying client around dial. Each call is
// stamped with a fresh sequence number; when a call fails for a reason
// other than cancellation, the connection is discarded, a new one is
// dialled, and the *same* request (same sequence number) is re-sent, up
// to attempts tries. Combined with the sites' sequence-number dedup this
// yields exactly-once request execution across connection failures — the
// property the non-idempotent Next request needs.
func Retry(dial DialFunc, attempts int) Client {
	if attempts < 1 {
		attempts = 1
	}
	return &retryClient{dial: dial, attempts: attempts, client: newClientID()}
}

// newClientID draws a random nonzero identifier so independent
// coordinators never share a sequence space at the sites.
func newClientID() uint64 {
	var buf [8]byte
	for {
		if _, err := cryptorand.Read(buf[:]); err != nil {
			// crypto/rand failing is effectively fatal elsewhere too;
			// fall back to a fixed id rather than panicking.
			return 1
		}
		if id := binary.LittleEndian.Uint64(buf[:]); id != 0 {
			return id
		}
	}
}

type retryClient struct {
	mu       sync.Mutex
	dial     DialFunc
	attempts int
	cur      Client
	client   uint64
	seq      uint64
	closed   bool
}

func (c *retryClient) Call(ctx context.Context, req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	c.seq++
	stamped := *req
	stamped.Seq = c.seq
	stamped.Client = c.client

	var lastErr error
	for attempt := 0; attempt < c.attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if c.cur == nil {
			client, err := c.dial()
			if err != nil {
				lastErr = err
				continue
			}
			c.cur = client
		}
		resp, err := c.cur.Call(ctx, &stamped)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		// The connection state is unknown; discard it and redial.
		c.cur.Close()
		c.cur = nil
	}
	return nil, fmt.Errorf("transport: %d attempt(s) failed: %w", c.attempts, lastErr)
}

func (c *retryClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.cur != nil {
		err := c.cur.Close()
		c.cur = nil
		return err
	}
	return nil
}
