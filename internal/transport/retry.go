package transport

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// DialFunc opens a fresh connection to a site.
type DialFunc func() (Client, error)

// Retry wraps a redialing, retrying client around dial. Each call is
// stamped with a fresh sequence number; when a call fails for a reason
// other than cancellation, the connection is discarded, a new one is
// dialled, and the *same* request (same sequence number) is re-sent, up
// to attempts tries. Combined with the sites' sequence-number dedup this
// yields exactly-once request execution across connection failures — the
// property the non-idempotent Next request needs.
//
// The returned client keeps fault-tolerance accounting (see
// RetryClient.Stats) so chaos tests and operators can observe how hard
// the retry machinery is working, not just whether the answer survived.
func Retry(dial DialFunc, attempts int) *RetryClient {
	if attempts < 1 {
		attempts = 1
	}
	return &RetryClient{dial: dial, attempts: attempts, client: newClientID()}
}

// newClientID draws a random nonzero identifier so independent
// coordinators never share a sequence space at the sites.
func newClientID() uint64 {
	var buf [8]byte
	for {
		if _, err := cryptorand.Read(buf[:]); err != nil {
			// crypto/rand failing is effectively fatal elsewhere too;
			// fall back to a fixed id rather than panicking.
			return 1
		}
		if id := binary.LittleEndian.Uint64(buf[:]); id != 0 {
			return id
		}
	}
}

// RetrySnapshot is a point-in-time copy of a RetryClient's fault-
// tolerance accounting, in the style of Meter.Snapshot.
type RetrySnapshot struct {
	// Calls counts Call invocations.
	Calls int64
	// Retries counts re-sends after a failed attempt (a call that
	// succeeds first time contributes zero).
	Retries int64
	// Redials counts connections dialled beyond each call's first need —
	// i.e. dials caused by a discarded connection.
	Redials int64
	// DialErrors counts dial attempts that themselves failed.
	DialErrors int64
	// Failures counts calls that exhausted every attempt.
	Failures int64
}

// Sub returns the delta s − earlier, for measuring a phase.
func (s RetrySnapshot) Sub(earlier RetrySnapshot) RetrySnapshot {
	return RetrySnapshot{
		Calls:      s.Calls - earlier.Calls,
		Retries:    s.Retries - earlier.Retries,
		Redials:    s.Redials - earlier.Redials,
		DialErrors: s.DialErrors - earlier.DialErrors,
		Failures:   s.Failures - earlier.Failures,
	}
}

// RetryClient is the concrete retrying client returned by Retry. It
// implements Client.
type RetryClient struct {
	mu       sync.Mutex
	dial     DialFunc
	attempts int
	cur      Client
	client   uint64
	seq      uint64
	closed   bool
	dialed   bool // true once the current call chain has dialled at least once

	calls      atomic.Int64
	retries    atomic.Int64
	redials    atomic.Int64
	dialErrors atomic.Int64
	failures   atomic.Int64

	// registry mirrors (nil when unobserved); kept alongside the atomics
	// so Stats works without a registry and the registry sees live totals.
	ctrRetries    *obs.Counter
	ctrRedials    *obs.Counter
	ctrDialErrors *obs.Counter
	ctrFailures   *obs.Counter
}

// Stats returns the current fault-tolerance counters. Safe to call
// concurrently with Call.
func (c *RetryClient) Stats() RetrySnapshot {
	return RetrySnapshot{
		Calls:      c.calls.Load(),
		Retries:    c.retries.Load(),
		Redials:    c.redials.Load(),
		DialErrors: c.dialErrors.Load(),
		Failures:   c.failures.Load(),
	}
}

// Observe mirrors the retry counters into reg under the site label, so a
// scrape shows how unreliable each link is. Call once, before traffic.
// Nil-safe.
func (c *RetryClient) Observe(reg *obs.Registry, site string) *RetryClient {
	if reg == nil {
		return c
	}
	reg.Describe(
		"dsud_retry_retries_total", "Request re-sends after a failed attempt, by site.",
		"dsud_retry_redials_total", "Connections redialled after a discard, by site.",
		"dsud_retry_dial_errors_total", "Dial attempts that failed, by site.",
		"dsud_retry_failures_total", "Calls that exhausted every attempt, by site.",
	)
	c.ctrRetries = reg.Counter("dsud_retry_retries_total", "site", site)
	c.ctrRedials = reg.Counter("dsud_retry_redials_total", "site", site)
	c.ctrDialErrors = reg.Counter("dsud_retry_dial_errors_total", "site", site)
	c.ctrFailures = reg.Counter("dsud_retry_failures_total", "site", site)
	return c
}

func (c *RetryClient) Call(ctx context.Context, req *Request) (*Response, error) {
	resp, _, err := c.CallBytes(ctx, req)
	return resp, err
}

// CallBytes is Call with per-request byte attribution forwarded from
// the underlying transport (ByteReporter). The mutex covers only
// sequence stamping and connection acquisition — never the network
// round trip — so many calls proceed concurrently over one shared mux
// connection. When that connection dies, every in-flight call fails at
// once; each then redials through current(), which dials once and hands
// the fresh connection to all of them. Sequence-number dedup at the
// sites keeps the re-sent requests exactly-once.
func (c *RetryClient) CallBytes(ctx context.Context, req *Request) (*Response, int64, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, 0, ErrClosed
	}
	c.seq++
	stamped := *req
	stamped.Seq = c.seq
	stamped.Client = c.client
	c.mu.Unlock()
	c.calls.Add(1)

	var lastErr error
	for attempt := 0; attempt < c.attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		if attempt > 0 {
			c.retries.Add(1)
			c.ctrRetries.Inc()
		}
		cl, err := c.current()
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return nil, 0, ErrClosed // the RetryClient itself was closed
			}
			lastErr = err
			continue
		}
		resp, n, err := callBytes(cl, ctx, &stamped)
		if err == nil {
			return resp, n, nil
		}
		lastErr = err
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, 0, err
		}
		// The connection state is unknown; discard it and redial. With a
		// shared mux connection several calls race here — discard is
		// idempotent by pointer identity, so the loser just retries on
		// the winner's fresh connection.
		c.discard(cl)
	}
	c.failures.Add(1)
	c.ctrFailures.Inc()
	return nil, 0, fmt.Errorf("transport: %d attempt(s) failed: %w", c.attempts, lastErr)
}

// current returns the live connection, dialling one if needed. Dials
// are serialised under the mutex so concurrent callers share a single
// connection instead of racing to create their own.
func (c *RetryClient) current() (Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.cur != nil {
		return c.cur, nil
	}
	if c.dialed {
		// Not the first dial this client's lifetime: the previous
		// connection was discarded, so this is a redial.
		c.redials.Add(1)
		c.ctrRedials.Inc()
	}
	cl, err := c.dial()
	c.dialed = true
	if err != nil {
		c.dialErrors.Add(1)
		c.ctrDialErrors.Inc()
		return nil, err
	}
	c.cur = cl
	return cl, nil
}

// Current returns the live underlying connection, dialling one if
// needed — the hook telemetry subscription uses to reach the mux client
// beneath the retry layer. The connection is the same one concurrent
// Calls share; it may be discarded and redialled at any time, so
// anything bound to it (a subscription) must be re-established by its
// owner when it goes stale.
func (c *RetryClient) Current() (Client, error) {
	return c.current()
}

// discard retires a failed connection. Pointer identity guards against
// a stale caller discarding a successor connection it never used.
func (c *RetryClient) discard(cl Client) {
	c.mu.Lock()
	if c.cur == cl {
		c.cur = nil
	}
	c.mu.Unlock()
	cl.Close()
}

func (c *RetryClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.cur != nil {
		err := c.cur.Close()
		c.cur = nil
		return err
	}
	return nil
}
