package transport

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
)

// wireRequest frames a Request for the TCP transport.
type wireRequest struct {
	Req Request
}

// wireResponse frames a Response; Err carries handler failures back to the
// caller as text (errors are not gob-encodable in general).
type wireResponse struct {
	Resp Response
	Err  string
}

// Server exposes a Handler on a TCP listener, one goroutine per accepted
// connection. Each connection speaks whichever protocol its client
// opens with: the legacy v1 gob stream (strictly one request/response
// at a time) or, after the v2 handshake, the framed mux protocol where
// requests are dispatched to a bounded pool of worker goroutines and
// responses return as they complete, possibly out of order.
type Server struct {
	handler Handler
	meter   *Meter

	mu          sync.Mutex
	listener    net.Listener
	conns       map[net.Conn]struct{}
	wg          sync.WaitGroup
	closed      bool
	workerLimit int
	legacyOnly  bool
	// draining makes per-connection loops exit after the in-flight
	// request (if any) completes, instead of waiting for the next one —
	// the graceful half of Shutdown.
	draining atomic.Bool

	// Saturation telemetry across every v2 connection: how many worker
	// goroutines are inside the handler right now, and how many read
	// loops are parked waiting for a worker slot (the moment queued goes
	// nonzero, TCP backpressure has reached that connection's client).
	muxConns    atomic.Int64
	busyWorkers atomic.Int64
	queuedReqs  atomic.Int64

	// Telemetry push plane (see telemetry.go): the snapshot source the
	// publishers read (mu-guarded) and their aggregate counters.
	telemetrySource   TelemetrySource
	telemetrySubs     atomic.Int64
	telemetryPushes   atomic.Uint64
	telemetryLastPush atomic.Int64

	// frameTap, when set, observes every v2 frame the mux loops read or
	// write (see FrameTap). mu-guarded; loaded once per connection.
	frameTap FrameTap
}

// WorkerStats is a point-in-time view of the server's v2 worker-pool
// saturation, aggregated across connections. Busy at Limit×Conns with
// Queued > 0 is the backpressure regime: the server has stopped reading
// some connections and clients are throttled by TCP flow control.
type WorkerStats struct {
	// Conns is the number of live v2 (mux) connections.
	Conns int `json:"conns"`
	// Busy is how many requests are inside handlers right now; Limit is
	// the per-connection worker cap they are admitted under.
	Busy  int `json:"busy"`
	Limit int `json:"limit"`
	// Queued is how many connections' read loops are blocked waiting for
	// a free worker slot.
	Queued int `json:"queued"`
}

// WorkerStats reports current v2 worker-pool saturation. Cheap enough
// for status handlers; safe for concurrent use.
func (s *Server) WorkerStats() WorkerStats {
	s.mu.Lock()
	limit := s.workerLimit
	s.mu.Unlock()
	if limit < 1 {
		limit = DefaultWorkerLimit
	}
	return WorkerStats{
		Conns:  int(s.muxConns.Load()),
		Busy:   int(s.busyWorkers.Load()),
		Limit:  limit,
		Queued: int(s.queuedReqs.Load()),
	}
}

// DefaultWorkerLimit bounds concurrent v2 request handlers per
// connection when SetWorkerLimit was not called. One coordinator
// multiplexes all of its concurrent queries over a single connection,
// so the limit is per-peer fairness and memory protection, not a
// per-query cap.
const DefaultWorkerLimit = 32

// SetWorkerLimit bounds how many v2 requests one connection may have in
// flight in handlers simultaneously (n < 1 restores the default).
// Beyond the limit the server stops reading the connection, so TCP
// backpressure reaches the client. Call before Serve.
func (s *Server) SetWorkerLimit(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.workerLimit = n
}

// SetLegacyOnly makes the server behave like a pre-v2 build: every
// connection is treated as a bare gob stream, and a v2 hello is fed to
// the gob decoder (which chokes on it) exactly as an old binary would.
// For negotiation tests and staged rollouts.
func (s *Server) SetLegacyOnly(v bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.legacyOnly = v
}

// SetFrameTap installs (or, with nil, removes) a tap observing every v2
// frame the server's mux loops read or write — the wire-level counter
// feed for per-direction frame metrics. Call before Serve; connections
// accepted earlier keep the tap they started with.
func (s *Server) SetFrameTap(tap FrameTap) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frameTap = tap
}

// NewServer returns a server for h. meter may be nil; when set, wire bytes
// are recorded on it.
func NewServer(h Handler, meter *Meter) *Server {
	return &Server{handler: h, meter: meter, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on lis until Close (or a fatal accept error).
// It blocks; run it in a goroutine.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return ErrClosed
	}
	s.listener = lis
	s.mu.Unlock()

	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	var reader io.Reader = conn
	var writer io.Writer = conn
	if s.meter != nil {
		reader = &countingReader{r: conn, meter: s.meter}
		writer = &countingWriter{w: conn, meter: s.meter}
	}
	br := bufio.NewReader(reader)
	s.mu.Lock()
	legacyOnly := s.legacyOnly
	s.mu.Unlock()
	if !legacyOnly {
		// Protocol sniff: a v2 client leads with MuxMagic, whose first
		// byte can never begin a gob stream, so four peeked bytes decide
		// the protocol without consuming anything.
		if peek, err := br.Peek(len(codec.MuxMagic)); err == nil && bytes.Equal(peek, codec.MuxMagic[:]) {
			s.serveMux(conn, br, writer)
			return
		}
	}
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(writer)
	for {
		var wreq wireRequest
		if err := dec.Decode(&wreq); err != nil {
			return // EOF, broken peer, or a drain deadline; the connection is done
		}
		resp, err := s.handler.Handle(context.Background(), &wreq.Req)
		var wresp wireResponse
		if err != nil {
			wresp.Err = err.Error()
		} else if resp != nil {
			wresp.Resp = *resp
		}
		if err := enc.Encode(&wresp); err != nil {
			return
		}
		if s.draining.Load() {
			// Shutdown in progress: the request that was in flight has
			// been answered; stop reading and let the peer redial
			// elsewhere.
			return
		}
	}
}

// Shutdown stops the server gracefully: the listener closes (no new
// connections), every idle connection is woken and closed, connections
// with a request in flight finish handling and answering it, and
// Shutdown blocks until all per-connection goroutines have exited or ctx
// expires — in which case the stragglers are closed hard, exactly as
// Close would. Requests that were only partially received when the
// drain began are dropped unanswered ("stop accepting requests").
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.draining.Store(true)
	lis := s.listener
	// Wake connections blocked in Decode waiting for a request that will
	// never be served: an immediate read deadline errors the pending read
	// while leaving in-flight handlers free to write their response.
	for conn := range s.conns {
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	var err error
	if lis != nil {
		err = lis.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return err
	case <-ctx.Done():
		// Give up on the drain: hard-close the stragglers' connections
		// and return without waiting — a handler stuck in user code can
		// never be forced out, and its goroutine will exit on its own
		// when the handler returns and the response write fails.
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		if err == nil {
			err = ctx.Err()
		}
		return err
	}
}

// Close stops accepting, closes live connections, and waits for the
// per-connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.listener
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if lis != nil {
		err = lis.Close()
	}
	s.wg.Wait()
	return err
}

// Dial connects a Client to a TCP site at addr. meter may be nil; when
// set, wire bytes are recorded on it (tuple accounting still happens via
// Metered, which composes with this client).
func Dial(addr string, meter *Meter) (Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return newTCPClient(conn, meter), nil
}

func newTCPClient(conn net.Conn, meter *Meter) Client {
	var reader io.Reader = conn
	var writer io.Writer = conn
	if meter != nil {
		reader = &countingReader{r: conn, meter: meter}
		writer = &countingWriter{w: conn, meter: meter}
	}
	return &tcpClient{
		conn: conn,
		dec:  gob.NewDecoder(reader),
		enc:  gob.NewEncoder(writer),
	}
}

type tcpClient struct {
	mu     sync.Mutex
	conn   net.Conn
	dec    *gob.Decoder
	enc    *gob.Encoder
	closed bool
}

// Call sends one request and waits for its response. Cancellation closes
// the connection (the protocol has no other way to abandon an in-flight
// read), so a cancelled client is dead afterwards.
func (c *tcpClient) Call(ctx context.Context, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}

	// The watcher aborts a blocked send/receive by closing the socket when
	// ctx is cancelled. It re-checks done after waking so that a
	// cancellation racing with a completed call (e.g. a broadcast helper
	// cancelling its child context on return) cannot kill the connection,
	// and Call joins it before returning so it never outlives the call.
	done := make(chan struct{})
	watcherExit := make(chan struct{})
	var cancelled atomic.Bool
	go func() {
		defer close(watcherExit)
		select {
		case <-ctx.Done():
			select {
			case <-done:
				// The call finished first; leave the connection alone.
			default:
				cancelled.Store(true)
				c.conn.Close()
			}
		case <-done:
		}
	}()
	defer func() {
		close(done)
		<-watcherExit
	}()

	if err := c.enc.Encode(&wireRequest{Req: *req}); err != nil {
		if cancelled.Load() {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("transport: send: %w", err)
	}
	var wresp wireResponse
	if err := c.dec.Decode(&wresp); err != nil {
		if cancelled.Load() {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("transport: receive: %w", err)
	}
	if wresp.Err != "" {
		return nil, errors.New(wresp.Err)
	}
	resp := wresp.Resp
	return &resp, nil
}

func (c *tcpClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

type countingReader struct {
	r     io.Reader
	meter *Meter
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.meter.AddBytes(int64(n))
	return n, err
}

type countingWriter struct {
	w     io.Writer
	meter *Meter
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.meter.AddBytes(int64(n))
	return n, err
}
