package transport

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
)

// ByteReporter is the optional Client extension for transports that can
// attribute wire bytes to individual requests. The v2 framed protocol
// knows each request's and response's exact frame size, so overlapping
// queries sharing one connection get exact per-query byte accounting —
// the thing the v1 gob stream (bytes observed only at the shared
// socket) fundamentally cannot do. Wrappers (Metered, Instrumented,
// Retry) forward the interface when their inner client provides it.
type ByteReporter interface {
	Client
	// CallBytes is Call, additionally returning the wire bytes this
	// request consumed (request frame + response frame). Zero when the
	// call failed.
	CallBytes(ctx context.Context, req *Request) (*Response, int64, error)
}

// callBytes invokes cl preferring per-request byte attribution; clients
// without it report zero bytes (their bytes are socket-counted instead).
func callBytes(cl Client, ctx context.Context, req *Request) (*Response, int64, error) {
	if br, ok := cl.(ByteReporter); ok {
		return br.CallBytes(ctx, req)
	}
	resp, err := cl.Call(ctx, req)
	return resp, 0, err
}

// muxHandshakeTimeout bounds the v2 hello round trip at dial time. A
// true v1 peer does not answer the hello (its gob decoder blocks
// waiting for bytes that never come), so this deadline is what sends
// the client to the fallback. A variable so negotiation tests can
// shorten the wait.
var muxHandshakeTimeout = 5 * time.Second

// errMuxBroken wraps the terminal error of a mux connection when it is
// surfaced to calls that were in flight as it died.
var errMuxBroken = errors.New("transport: mux connection broken")

// DialAuto connects to a site negotiating the newest wire protocol both
// ends speak: it sends the v2 hello and returns a pipelining MuxClient
// when the server echoes it, or falls back to a fresh v1 gob connection
// when the peer rejects or ignores the hello (an old site daemon). meter
// may be nil; when set it observes handshake bytes and — on the v1
// fallback — all socket bytes, exactly as Dial does. (v2 call bytes are
// attributed per request through ByteReporter instead, so they are
// charged by the Metered wrapper, not here.)
func DialAuto(addr string, meter *Meter) (Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	hello := codec.MuxHandshake()
	deadline := time.Now().Add(muxHandshakeTimeout)
	conn.SetDeadline(deadline)
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return Dial(addr, meter)
	}
	var ack [5]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil || ack != hello {
		// No echo: the peer is a v1-only build (it choked on the magic
		// and closed, or answered something else). Redial plain gob.
		conn.Close()
		return Dial(addr, meter)
	}
	conn.SetDeadline(time.Time{})
	if meter != nil {
		meter.AddBytes(int64(len(hello) + len(ack)))
	}
	return NewMuxClient(conn), nil
}

// MuxClient is the wire-v2 client: many concurrent Calls pipeline over
// one TCP connection as ID-tagged frames, a demux goroutine routes
// responses (which may arrive out of order) back to their callers, and
// cancelling one call abandons only that call's slot — the connection
// stays usable, unlike the v1 client, whose only cancellation lever is
// closing the socket. MuxClient is safe for concurrent use.
type MuxClient struct {
	conn net.Conn

	// wmu serialises the encode→frame→write path. The gob stream is
	// per-connection (type descriptors sent once, not once per frame),
	// so encoding order must match write order.
	wmu    sync.Mutex
	encBuf bytes.Buffer
	enc    *gob.Encoder
	wbuf   []byte

	nextID atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan muxResult
	subs    map[uint64]*muxSub // live telemetry subscriptions by ID
	broken  error              // terminal connection error; nil while healthy
	closed  bool
}

// muxSub is one live telemetry subscription. Its decode state (the
// reused snapshot that doubles as the delta base) is only touched from
// the demux goroutine, so it needs no lock of its own.
type muxSub struct {
	fn     func(*codec.Telemetry)
	t      codec.Telemetry
	primed bool // t holds a decoded snapshot usable as a delta base
}

// deliver decodes one pushed frame and hands it to the callback. A frame
// that fails to decode (corrupt, or a delta whose base we lost) drops
// the prime: the stream re-synchronises on the publisher's next full
// re-anchor instead of erroring the whole connection.
func (sub *muxSub) deliver(payload []byte) {
	var prev *codec.Telemetry
	if sub.primed {
		prev = &sub.t
	}
	if err := codec.DecodeTelemetry(payload, &sub.t, prev); err != nil {
		sub.primed = false
		return
	}
	sub.primed = true
	sub.fn(&sub.t)
}

type muxResult struct {
	resp  *Response
	err   error
	bytes int64 // response frame wire size
}

// NewMuxClient speaks wire v2 over an already-handshaken connection.
// Most callers want DialAuto; this exists for tests and custom dialers.
func NewMuxClient(conn net.Conn) *MuxClient {
	c := &MuxClient{conn: conn, pending: make(map[uint64]chan muxResult)}
	c.enc = gob.NewEncoder(&c.encBuf)
	go c.readLoop()
	return c
}

// payloadReader feeds successive frame payloads to the persistent gob
// decoder. Each Decode consumes exactly the bytes the peer's Encode
// produced (they share one logical stream), so running dry mid-message
// means the stream is corrupt.
type payloadReader struct{ buf []byte }

func (p *payloadReader) Read(b []byte) (int, error) {
	if len(p.buf) == 0 {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(b, p.buf)
	p.buf = p.buf[n:]
	return n, nil
}

// readLoop is the demux goroutine: it decodes response frames and
// delivers each to its caller's channel. Any read error is terminal —
// every in-flight call fails with it, and subsequent calls are refused
// until the owner (usually a Retry client) discards and redials.
func (c *MuxClient) readLoop() {
	pr := &payloadReader{}
	dec := gob.NewDecoder(pr)
	for {
		fr, n, err := codec.ReadFrame(c.conn)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", errMuxBroken, err))
			return
		}
		if fr.Type == codec.FrameTelemetry {
			c.mu.Lock()
			sub := c.subs[fr.ID]
			c.mu.Unlock()
			if sub != nil {
				sub.deliver(fr.Payload)
			}
			continue
		}
		if fr.Type != codec.FrameResponse {
			continue // unknown frame types are ignorable padding
		}
		pr.buf = fr.Payload
		var wresp wireResponse
		if err := dec.Decode(&wresp); err != nil {
			c.fail(fmt.Errorf("%w: decode: %v", errMuxBroken, err))
			return
		}
		res := muxResult{bytes: int64(n)}
		if wresp.Err != "" {
			res.err = errors.New(wresp.Err)
		} else {
			resp := wresp.Resp
			res.resp = &resp
		}
		c.mu.Lock()
		ch := c.pending[fr.ID]
		delete(c.pending, fr.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- res // buffered; a cancelled caller simply never reads it
		}
	}
}

// fail marks the connection dead and errors out every in-flight call.
func (c *MuxClient) fail(err error) {
	c.mu.Lock()
	if c.broken == nil {
		c.broken = err
	}
	pend := c.pending
	c.pending = make(map[uint64]chan muxResult)
	c.subs = nil // subscriptions die with the connection; resubscribe after redial
	c.mu.Unlock()
	c.conn.Close()
	for _, ch := range pend {
		ch <- muxResult{err: err}
	}
}

// forget abandons one request slot (cancellation).
func (c *MuxClient) forget(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// sendCancel tells the server the request was abandoned so it can stop
// working on it. Best-effort and asynchronous: a response already in
// flight just gets dropped by the demux, and a write error means the
// connection is dying anyway.
func (c *MuxClient) sendCancel(id uint64) {
	frame := codec.AppendFrame(nil, codec.FrameCancel, id, nil)
	c.wmu.Lock()
	c.conn.Write(frame)
	c.wmu.Unlock()
}

// SubscribeTelemetry implements TelemetrySubscriber: it asks the server
// to push one telemetry snapshot per interval (0 selects the server
// default) and invokes fn from the demux goroutine for each one. The
// snapshot passed to fn is reused between pushes — copy what you keep.
// A server that predates telemetry silently ignores the subscription
// (the subscriber just never sees a push), and the subscription dies
// with the connection. cancel is idempotent and best-effort, like
// request cancellation.
func (c *MuxClient) SubscribeTelemetry(interval time.Duration, fn func(*codec.Telemetry)) (func(), error) {
	id := c.nextID.Add(1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if c.broken != nil {
		err := c.broken
		c.mu.Unlock()
		return nil, err
	}
	if c.subs == nil {
		c.subs = make(map[uint64]*muxSub)
	}
	c.subs[id] = &muxSub{fn: fn}
	c.mu.Unlock()

	frame := codec.AppendFrame(nil, codec.FrameSubscribe, id,
		codec.AppendSubscribe(nil, int64(interval)))
	c.wmu.Lock()
	_, err := c.conn.Write(frame)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.subs, id)
		c.mu.Unlock()
		c.fail(fmt.Errorf("%w: subscribe: %v", errMuxBroken, err))
		return nil, fmt.Errorf("transport: subscribe: %w", err)
	}
	return func() {
		c.mu.Lock()
		_, live := c.subs[id]
		delete(c.subs, id)
		c.mu.Unlock()
		if live {
			c.sendCancel(id)
		}
	}, nil
}

// Call implements Client.
func (c *MuxClient) Call(ctx context.Context, req *Request) (*Response, error) {
	resp, _, err := c.CallBytes(ctx, req)
	return resp, err
}

// CallBytes implements ByteReporter: one pipelined request/response,
// with the pair's exact framed wire size. Cancellation abandons the
// slot (and notifies the server) without touching the connection.
func (c *MuxClient) CallBytes(ctx context.Context, req *Request) (*Response, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	id := c.nextID.Add(1)
	ch := make(chan muxResult, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, 0, ErrClosed
	}
	if c.broken != nil {
		err := c.broken
		c.mu.Unlock()
		return nil, 0, err
	}
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	c.encBuf.Reset()
	err := c.enc.Encode(&wireRequest{Req: *req})
	var reqBytes int64
	if err == nil {
		c.wbuf = codec.AppendFrame(c.wbuf[:0], codec.FrameRequest, id, c.encBuf.Bytes())
		reqBytes = int64(len(c.wbuf))
		_, err = c.conn.Write(c.wbuf)
	}
	c.wmu.Unlock()
	if err != nil {
		c.forget(id)
		// A failed send leaves the shared gob stream in an unknown
		// state; the connection is unusable for everyone.
		c.fail(fmt.Errorf("%w: send: %v", errMuxBroken, err))
		return nil, 0, fmt.Errorf("transport: send: %w", err)
	}

	select {
	case res := <-ch:
		if res.err != nil {
			return nil, 0, res.err
		}
		return res.resp, reqBytes + res.bytes, nil
	case <-ctx.Done():
		c.forget(id)
		go c.sendCancel(id)
		return nil, 0, ctx.Err()
	}
}

// serveMux is the server half of wire v2: after echoing the handshake
// it reads frames, dispatches each request to a worker goroutine
// (bounded by the worker limit — past it the server stops reading, so
// backpressure is ordinary TCP flow control), and serialises response
// frames back over the shared connection in completion order. A
// FrameCancel cancels the matching in-flight handler's context; the
// connection itself is untouched, which is the whole point of v2
// cancellation.
func (s *Server) serveMux(conn net.Conn, br *bufio.Reader, w io.Writer) {
	var hello [5]byte
	if _, err := io.ReadFull(br, hello[:]); err != nil {
		return
	}
	if hello != codec.MuxHandshake() {
		// Same magic, unknown version: stay silent and let the client's
		// handshake deadline route it to the v1 fallback.
		return
	}
	s.mu.Lock()
	limit := s.workerLimit
	tap := s.frameTap
	s.mu.Unlock()
	if limit < 1 {
		limit = DefaultWorkerLimit
	}
	if _, err := w.Write(hello[:]); err != nil {
		return
	}
	s.muxConns.Add(1)
	defer s.muxConns.Add(-1)

	var (
		// mw serialises the shared response gob stream + frame writes,
		// shared with this connection's telemetry publishers.
		mw     = &muxWriter{w: w}
		encBuf bytes.Buffer

		// imu guards the in-flight table consulted by FrameCancel and the
		// telemetry-subscription table it also serves.
		imu      sync.Mutex
		inflight = make(map[uint64]context.CancelFunc)
		subs     = make(map[uint64]context.CancelFunc)

		wg  sync.WaitGroup
		sem = make(chan struct{}, limit)
	)
	enc := gob.NewEncoder(&encBuf)
	pr := &payloadReader{}
	dec := gob.NewDecoder(pr)
	connCtx, connCancel := context.WithCancel(context.Background())
	defer connCancel()
	// Drain contract (see Shutdown): when the read loop exits, requests
	// already dispatched still finish handling and answering before the
	// connection closes.
	defer wg.Wait()
	// Telemetry publishers, unlike request handlers, run until told to
	// stop — so they get their own cancel+wait pair, run (LIFO) before
	// the handler drain above: cancel the streams, wait them out, then
	// let in-flight requests finish answering.
	pubCtx, pubCancel := context.WithCancel(connCtx)
	var pubWG sync.WaitGroup
	defer pubWG.Wait()
	defer pubCancel()

	for {
		fr, n, err := codec.ReadFrame(br)
		if err != nil {
			return // EOF, broken peer, corruption, or a drain deadline
		}
		if tap != nil {
			tap(TapInbound, fr.Type, n)
		}
		switch fr.Type {
		case codec.FrameCancel:
			imu.Lock()
			if cancel := inflight[fr.ID]; cancel != nil {
				cancel()
			}
			if cancel := subs[fr.ID]; cancel != nil {
				cancel()
				delete(subs, fr.ID)
			}
			imu.Unlock()
			continue
		case codec.FrameSubscribe:
			interval, derr := codec.DecodeSubscribe(fr.Payload)
			if derr != nil {
				continue // malformed body: drop, like an unknown frame
			}
			s.mu.Lock()
			src := s.telemetrySource
			s.mu.Unlock()
			if src == nil {
				continue // telemetry not wired: subscriber sees no pushes
			}
			subCtx, subCancel := context.WithCancel(pubCtx)
			imu.Lock()
			if old := subs[fr.ID]; old != nil {
				old() // duplicate ID: the newer subscription wins
			}
			subs[fr.ID] = subCancel
			imu.Unlock()
			pubWG.Add(1)
			go func(id uint64, interval time.Duration) {
				defer pubWG.Done()
				s.runTelemetryPublisher(subCtx, mw, id, interval, src)
			}(fr.ID, time.Duration(interval))
			continue
		case codec.FrameRequest:
		default:
			continue // unknown frame types are ignorable padding
		}
		pr.buf = fr.Payload
		var wreq wireRequest
		if err := dec.Decode(&wreq); err != nil {
			return // the shared gob stream is corrupt; the connection is done
		}
		// A full pool parks this read loop on sem; the queued gauge is
		// what makes that saturation visible to /statusz before clients
		// feel it as TCP backpressure.
		s.queuedReqs.Add(1)
		sem <- struct{}{}
		s.queuedReqs.Add(-1)
		s.busyWorkers.Add(1)
		reqCtx, cancel := context.WithCancel(connCtx)
		imu.Lock()
		inflight[fr.ID] = cancel
		imu.Unlock()
		wg.Add(1)
		go func(id uint64, req Request, ctx context.Context, cancel context.CancelFunc) {
			defer wg.Done()
			defer func() { <-sem; s.busyWorkers.Add(-1) }()
			defer func() {
				imu.Lock()
				delete(inflight, id)
				imu.Unlock()
				cancel()
			}()
			resp, err := s.handler.Handle(ctx, &req)
			var wresp wireResponse
			if err != nil {
				wresp.Err = err.Error()
			} else if resp != nil {
				wresp.Resp = *resp
			}
			if ctx.Err() != nil {
				return // cancelled: the client has already abandoned the slot
			}
			mw.mu.Lock()
			encBuf.Reset()
			if enc.Encode(&wresp) == nil {
				mw.buf = codec.AppendFrame(mw.buf[:0], codec.FrameResponse, id, encBuf.Bytes())
				mw.w.Write(mw.buf)
				if tap != nil {
					tap(TapOutbound, codec.FrameResponse, len(mw.buf))
				}
			}
			mw.mu.Unlock()
		}(fr.ID, wreq.Req, reqCtx, cancel)
		if s.draining.Load() {
			return // stop reading; the deferred wg.Wait answers in-flight work
		}
	}
}

// Close releases the connection; in-flight calls fail.
func (c *MuxClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	c.fail(ErrClosed)
	if errors.Is(err, net.ErrClosed) {
		return nil // readLoop got there first; not the caller's problem
	}
	return err
}
