package transport

import (
	"context"

	"repro/internal/codec"
)

// FrameTap observes raw v2 frames crossing a server's mux loops:
// inbound frames as the read loop decodes them, outbound response
// frames as they are written. wireBytes is the framed size including
// the length prefix. Taps run on the connection's read loop and worker
// goroutines, so they must be safe for concurrent use and cheap —
// counter bumps, not payload inspection (per-connection gob streams are
// stateful, so a frame payload is not decodable standalone anyway;
// payload capture happens at the Call layer via Recorded).
type FrameTap func(dir uint8, t codec.FrameType, wireBytes int)

// Frame tap directions.
const (
	// TapInbound is a frame read off the connection.
	TapInbound = 0
	// TapOutbound is a frame written to the connection.
	TapOutbound = 1
)

// CallTap observes completed RPCs on a recorded client. RecordCall runs
// on the query's broadcast goroutines, after the inner call returns and
// its meters have accounted it, so implementations must be safe for
// concurrent use and should stay cheap. wireBytes is the framed wire
// cost the inner transport attributed to the call (0 on transports that
// meter at the socket instead).
type CallTap interface {
	RecordCall(site int, req *Request, resp *Response, wireBytes int64)
}

// Recorded wraps a Client so every successful call is offered to tap,
// stamped with the given site index. It rides the same wrapper chain as
// Metered/Instrumented: the wrapper forwards ByteReporter so stacked
// meters keep exact per-request bytes, and Unwrap keeps optional
// interfaces discoverable. Queries that are not being recorded never
// stack this wrapper, so the unsampled path pays nothing.
func Recorded(c Client, site int, tap CallTap) Client {
	return &recordedClient{inner: c, site: site, tap: tap}
}

type recordedClient struct {
	inner Client
	site  int
	tap   CallTap
}

func (c *recordedClient) Call(ctx context.Context, req *Request) (*Response, error) {
	resp, _, err := c.CallBytes(ctx, req)
	return resp, err
}

func (c *recordedClient) CallBytes(ctx context.Context, req *Request) (*Response, int64, error) {
	resp, n, err := callBytes(c.inner, ctx, req)
	if err == nil {
		c.tap.RecordCall(c.site, req, resp, n)
	}
	return resp, n, err
}

func (c *recordedClient) Close() error { return c.inner.Close() }

// Unwrap exposes the inner client so optional interfaces (telemetry
// subscription) are discoverable through the wrapper.
func (c *recordedClient) Unwrap() Client { return c.inner }
