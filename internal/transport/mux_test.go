package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// sessionEcho answers every request with Size = int(req.Session), so a
// test can verify responses are demultiplexed to the right caller.
func sessionEcho(ctx context.Context, req *Request) (*Response, error) {
	return &Response{Size: int(req.Session)}, nil
}

func startMuxServer(t *testing.T, h Handler) (string, *Server) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := NewServer(h, nil)
	go s.Serve(lis)
	t.Cleanup(func() { s.Close() })
	return lis.Addr().String(), s
}

func dialMux(t *testing.T, addr string) *MuxClient {
	t.Helper()
	cl, err := DialAuto(addr, nil)
	if err != nil {
		t.Fatalf("DialAuto: %v", err)
	}
	mc, ok := cl.(*MuxClient)
	if !ok {
		t.Fatalf("DialAuto returned %T against a v2 server, want *MuxClient", cl)
	}
	t.Cleanup(func() { mc.Close() })
	return mc
}

func TestMuxConcurrentCalls(t *testing.T) {
	addr, _ := startMuxServer(t, handlerFunc(sessionEcho))
	mc := dialMux(t, addr)

	const callers = 32
	const perCaller = 25
	var wg sync.WaitGroup
	errCh := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perCaller; i++ {
				want := uint64(g*perCaller + i + 1)
				resp, n, err := mc.CallBytes(context.Background(), &Request{Kind: KindStatus, Session: want})
				if err != nil {
					errCh <- fmt.Errorf("caller %d call %d: %v", g, i, err)
					return
				}
				if resp.Size != int(want) {
					errCh <- fmt.Errorf("caller %d call %d: demux mixed responses: got %d want %d", g, i, resp.Size, want)
					return
				}
				if n <= 0 {
					errCh <- fmt.Errorf("caller %d call %d: no byte attribution (n=%d)", g, i, n)
					return
				}
			}
			errCh <- nil
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestMuxCancelKeepsConnectionUsable pins the headline v2 property:
// cancelling one in-flight call must neither kill the shared connection
// nor disturb other callers — the exact opposite of the v1 client,
// where cancellation closes the socket.
func TestMuxCancelKeepsConnectionUsable(t *testing.T) {
	entered := make(chan struct{}, 1)
	cancelled := make(chan struct{}, 1)
	h := handlerFunc(func(ctx context.Context, req *Request) (*Response, error) {
		if req.Session == 999 { // the victim request parks until cancelled
			entered <- struct{}{}
			<-ctx.Done()
			cancelled <- struct{}{}
			return nil, ctx.Err()
		}
		return sessionEcho(ctx, req)
	})
	addr, _ := startMuxServer(t, h)
	mc := dialMux(t, addr)

	// A bystander call in flight... (proves cancellation is per-request)
	bystander := make(chan error, 1)
	go func() {
		resp, err := mc.Call(context.Background(), &Request{Kind: KindStatus, Session: 7})
		if err == nil && resp.Size != 7 {
			err = fmt.Errorf("bystander got %d want 7", resp.Size)
		}
		bystander <- err
	}()

	ctx, cancel := context.WithCancel(context.Background())
	victim := make(chan error, 1)
	go func() {
		_, err := mc.Call(ctx, &Request{Kind: KindStatus, Session: 999})
		victim <- err
	}()
	<-entered // the victim is in the handler, mid-flight
	cancel()

	if err := <-victim; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled call: got %v, want context.Canceled", err)
	}
	select {
	case <-cancelled:
		// FrameCancel reached the server and cancelled the handler ctx.
	case <-time.After(5 * time.Second):
		t.Fatal("server handler never saw the cancellation")
	}
	if err := <-bystander; err != nil {
		t.Fatalf("bystander call disturbed by cancellation: %v", err)
	}

	// ...and the connection must still answer new calls afterwards.
	for i := 1; i <= 10; i++ {
		resp, err := mc.Call(context.Background(), &Request{Kind: KindStatus, Session: uint64(i)})
		if err != nil {
			t.Fatalf("call %d after cancellation: connection unusable: %v", i, err)
		}
		if resp.Size != i {
			t.Fatalf("call %d after cancellation: got %d", i, resp.Size)
		}
	}
}

// TestDialAutoFallsBackToLegacy pins version negotiation: a v1-only
// server never answers the v2 hello, and DialAuto must come back with a
// working legacy client instead of an error.
func TestDialAutoFallsBackToLegacy(t *testing.T) {
	old := muxHandshakeTimeout
	muxHandshakeTimeout = 200 * time.Millisecond
	defer func() { muxHandshakeTimeout = old }()

	addr, s := startMuxServer(t, handlerFunc(sessionEcho))
	s.SetLegacyOnly(true)

	cl, err := DialAuto(addr, nil)
	if err != nil {
		t.Fatalf("DialAuto against v1-only server: %v", err)
	}
	defer cl.Close()
	if _, ok := cl.(*MuxClient); ok {
		t.Fatal("DialAuto returned a MuxClient against a v1-only server")
	}
	resp, err := cl.Call(context.Background(), &Request{Kind: KindStatus, Session: 5})
	if err != nil {
		t.Fatalf("legacy fallback call: %v", err)
	}
	if resp.Size != 5 {
		t.Fatalf("legacy fallback call: got %d want 5", resp.Size)
	}
}

// TestMuxServesLegacyClientsToo: one v2 server, one shared address, a
// v1 gob client and a v2 mux client working side by side.
func TestMuxServesLegacyClientsToo(t *testing.T) {
	addr, _ := startMuxServer(t, handlerFunc(sessionEcho))
	mc := dialMux(t, addr)
	legacy, err := Dial(addr, nil)
	if err != nil {
		t.Fatalf("legacy dial: %v", err)
	}
	defer legacy.Close()

	for i := 1; i <= 5; i++ {
		if resp, err := legacy.Call(context.Background(), &Request{Kind: KindStatus, Session: uint64(i)}); err != nil || resp.Size != i {
			t.Fatalf("legacy call %d: resp=%v err=%v", i, resp, err)
		}
		if resp, err := mc.Call(context.Background(), &Request{Kind: KindStatus, Session: uint64(i * 100)}); err != nil || resp.Size != i*100 {
			t.Fatalf("mux call %d: resp=%v err=%v", i, resp, err)
		}
	}
}

func TestMuxWorkerLimitBounds(t *testing.T) {
	var inFlight, peak atomic.Int64
	release := make(chan struct{})
	h := handlerFunc(func(ctx context.Context, req *Request) (*Response, error) {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return &Response{}, nil
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := NewServer(h, nil)
	s.SetWorkerLimit(2)
	go s.Serve(lis)
	t.Cleanup(func() { s.Close() })
	mc := dialMux(t, lis.Addr().String())

	const calls = 6
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mc.Call(context.Background(), &Request{Kind: KindStatus})
		}()
	}
	// Give the dispatch loop time to (incorrectly) overshoot the limit.
	time.Sleep(100 * time.Millisecond)
	if got := peak.Load(); got > 2 {
		t.Fatalf("worker limit 2 exceeded: %d handlers in flight", got)
	}
	close(release)
	wg.Wait()
	if got := peak.Load(); got > 2 {
		t.Fatalf("worker limit 2 exceeded after release: %d", got)
	}
}

// TestMuxBrokenConnectionFailsInFlight: when the peer vanishes, every
// pending call errors out and later calls fail fast (the retry layer is
// what redials, not the mux client).
func TestMuxBrokenConnectionFailsInFlight(t *testing.T) {
	block := make(chan struct{})
	h := handlerFunc(func(ctx context.Context, req *Request) (*Response, error) {
		<-block
		return &Response{}, nil
	})
	addr, s := startMuxServer(t, h)
	mc := dialMux(t, addr)

	const callers = 4
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() {
			_, err := mc.Call(context.Background(), &Request{Kind: KindStatus})
			errs <- err
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the calls get on the wire
	close(block)
	s.Close() // hard-close: in-flight responses may or may not make it

	deadline := time.After(5 * time.Second)
	failures := 0
	for i := 0; i < callers; i++ {
		select {
		case err := <-errs:
			if err != nil {
				failures++
			}
		case <-deadline:
			t.Fatalf("call %d still blocked after server close", i)
		}
	}
	// At minimum the client must not deadlock; once broken, new calls
	// must fail immediately rather than hang.
	done := make(chan error, 1)
	go func() {
		_, err := mc.Call(context.Background(), &Request{Kind: KindStatus})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("call on a broken connection succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call on a broken connection hung")
	}
}

// TestRetryOverMuxRedials: the retry layer composes with mux — a dead
// shared connection fails concurrent calls, and they all recover onto
// one fresh connection.
func TestRetryOverMuxRedials(t *testing.T) {
	addrA, sA := startMuxServer(t, handlerFunc(sessionEcho))
	var addr atomic.Value
	addr.Store(addrA)
	rc := Retry(func() (Client, error) {
		return DialAuto(addr.Load().(string), nil)
	}, 5)
	defer rc.Close()

	if _, err := rc.Call(context.Background(), &Request{Kind: KindStatus, Session: 1}); err != nil {
		t.Fatalf("warm-up call: %v", err)
	}

	// Move the "site" to a new address and kill the old one: the shared
	// mux connection dies under the retry layer's feet.
	addrB, _ := startMuxServer(t, handlerFunc(sessionEcho))
	addr.Store(addrB)
	sA.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := uint64(i + 10)
			resp, err := rc.Call(context.Background(), &Request{Kind: KindStatus, Session: want})
			if err != nil {
				errCh <- fmt.Errorf("call %d: %v", i, err)
				return
			}
			if resp.Size != int(want) {
				errCh <- fmt.Errorf("call %d: got %d want %d", i, resp.Size, want)
				return
			}
			errCh <- nil
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	if st := rc.Stats(); st.Redials < 1 {
		t.Fatalf("expected at least one redial, stats: %+v", st)
	}
}
