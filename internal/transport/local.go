package transport

import (
	"context"
	"sync"
)

// Local returns an in-process Client that dispatches directly to h. Calls
// are serialised per client, mirroring the one-outstanding-request
// discipline of the TCP transport, and honour context cancellation.
func Local(h Handler) Client {
	return &localClient{handler: h}
}

type localClient struct {
	mu      sync.Mutex
	handler Handler
	closed  bool
}

func (c *localClient) Call(ctx context.Context, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	return c.handler.Handle(ctx, req)
}

func (c *localClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}
