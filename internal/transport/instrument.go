package transport

import (
	"context"
	"time"

	"repro/internal/obs"
)

// maxKind bounds the Kind enum for array-indexed per-kind instruments
// (index 0 is unused; kinds start at 1).
const maxKind = int(KindReplicate)

// Instrumented wraps a Client so every call is measured against reg: a
// per-kind latency histogram (dsud_rpc_duration_seconds) and a per-kind,
// per-outcome counter (dsud_rpc_requests_total). site labels the peer.
// The per-kind instruments are resolved once at construction, so the hot
// path is two atomic updates and one time.Since — no map lookups, no
// allocation. A nil registry returns c unchanged (zero cost).
func Instrumented(c Client, reg *obs.Registry, site string) Client {
	if reg == nil {
		return c
	}
	reg.Describe(
		"dsud_rpc_requests_total", "Protocol requests by site, kind and outcome.",
		"dsud_rpc_duration_seconds", "Round-trip latency of protocol requests by site and kind.",
	)
	ic := &instrumentedClient{inner: c}
	for k := 1; k <= maxKind; k++ {
		kind := Kind(k).String()
		ic.latency[k] = reg.Histogram("dsud_rpc_duration_seconds", nil, "site", site, "kind", kind)
		ic.ok[k] = reg.Counter("dsud_rpc_requests_total", "site", site, "kind", kind, "outcome", "ok")
		ic.err[k] = reg.Counter("dsud_rpc_requests_total", "site", site, "kind", kind, "outcome", "error")
	}
	return ic
}

type instrumentedClient struct {
	inner   Client
	latency [maxKind + 1]*obs.Histogram
	ok      [maxKind + 1]*obs.Counter
	err     [maxKind + 1]*obs.Counter
}

func (c *instrumentedClient) Call(ctx context.Context, req *Request) (*Response, error) {
	resp, _, err := c.CallBytes(ctx, req)
	return resp, err
}

// CallBytes forwards per-request byte attribution (ByteReporter) so
// instrumentation composes transparently with the v2 mux transport.
func (c *instrumentedClient) CallBytes(ctx context.Context, req *Request) (*Response, int64, error) {
	k := int(req.Kind)
	if k < 1 || k > maxKind {
		return callBytes(c.inner, ctx, req) // unknown kind: pass through unmeasured
	}
	start := time.Now()
	resp, n, err := callBytes(c.inner, ctx, req)
	c.latency[k].Observe(time.Since(start).Seconds())
	if err != nil {
		c.err[k].Inc()
	} else {
		c.ok[k].Inc()
	}
	return resp, n, err
}

func (c *instrumentedClient) Close() error { return c.inner.Close() }

// Unwrap exposes the inner client so optional interfaces (telemetry
// subscription) are discoverable through the wrapper.
func (c *instrumentedClient) Unwrap() Client { return c.inner }

// ExposeMeter registers the meter's counters with reg under the paper's
// bandwidth vocabulary. Values are read live at scrape time, so one
// registration covers the meter's whole lifetime (including Reset).
// Nil-safe in both arguments.
func ExposeMeter(reg *obs.Registry, m *Meter) {
	if reg == nil || m == nil {
		return
	}
	reg.Describe(
		"dsud_transport_tuples_up_total", "Tuples shipped from sites to the coordinator (the paper's up-bandwidth).",
		"dsud_transport_tuples_down_total", "Tuples shipped from the coordinator to sites (feedback broadcasts, updates).",
		"dsud_transport_messages_total", "Protocol round trips.",
		"dsud_transport_bytes_total", "Wire bytes where the transport can observe them (TCP only).",
	)
	reg.CounterFunc("dsud_transport_tuples_up_total", func() float64 { return float64(m.Snapshot().TuplesUp) })
	reg.CounterFunc("dsud_transport_tuples_down_total", func() float64 { return float64(m.Snapshot().TuplesDown) })
	reg.CounterFunc("dsud_transport_messages_total", func() float64 { return float64(m.Snapshot().Messages) })
	reg.CounterFunc("dsud_transport_bytes_total", func() float64 { return float64(m.Snapshot().Bytes) })
}
