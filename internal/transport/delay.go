package transport

import (
	"context"
	"time"
)

// Delayed wraps a client with a fixed artificial round-trip latency per
// call — a simple network model that lets single-machine experiments
// study progressiveness in the time domain (the paper's §3.2 motivates
// progressive delivery precisely by network delay). The sleep honours
// context cancellation.
func Delayed(c Client, latency time.Duration) Client {
	if latency <= 0 {
		return c
	}
	return &delayedClient{inner: c, latency: latency}
}

type delayedClient struct {
	inner   Client
	latency time.Duration
}

func (c *delayedClient) Call(ctx context.Context, req *Request) (*Response, error) {
	resp, _, err := c.CallBytes(ctx, req)
	return resp, err
}

// CallBytes forwards per-request byte attribution (ByteReporter), so a
// latency model stacked over a mux connection keeps exact accounting.
func (c *delayedClient) CallBytes(ctx context.Context, req *Request) (*Response, int64, error) {
	timer := time.NewTimer(c.latency)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	case <-timer.C:
	}
	return callBytes(c.inner, ctx, req)
}

func (c *delayedClient) Close() error { return c.inner.Close() }

// Unwrap exposes the inner client so optional interfaces (telemetry
// subscription) are discoverable through the wrapper.
func (c *delayedClient) Unwrap() Client { return c.inner }

// DelayedHandler wraps h so every request waits d before being handled
// — the site-service-time analogue of Delayed, used by throughput
// experiments to model real network/processing latency on loopback.
// Because the v2 server runs handlers on concurrent workers, pipelined
// requests overlap their delays, while the v1 one-at-a-time connection
// loop serialises them: exactly the contrast the mux throughput
// benchmark measures. The wait honours context cancellation.
func DelayedHandler(h Handler, d time.Duration) Handler {
	if d <= 0 {
		return h
	}
	return &delayedHandler{inner: h, latency: d}
}

type delayedHandler struct {
	inner   Handler
	latency time.Duration
}

func (h *delayedHandler) Handle(ctx context.Context, req *Request) (*Response, error) {
	timer := time.NewTimer(h.latency)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-timer.C:
	}
	return h.inner.Handle(ctx, req)
}
