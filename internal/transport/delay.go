package transport

import (
	"context"
	"time"
)

// Delayed wraps a client with a fixed artificial round-trip latency per
// call — a simple network model that lets single-machine experiments
// study progressiveness in the time domain (the paper's §3.2 motivates
// progressive delivery precisely by network delay). The sleep honours
// context cancellation.
func Delayed(c Client, latency time.Duration) Client {
	if latency <= 0 {
		return c
	}
	return &delayedClient{inner: c, latency: latency}
}

type delayedClient struct {
	inner   Client
	latency time.Duration
}

func (c *delayedClient) Call(ctx context.Context, req *Request) (*Response, error) {
	timer := time.NewTimer(c.latency)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-timer.C:
	}
	return c.inner.Call(ctx, req)
}

func (c *delayedClient) Close() error { return c.inner.Close() }
