package transport

import (
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/obs"
)

// fakeTelemetrySource fills deterministic snapshots with a counter that
// advances per fill, so subscribers can check delta reconstruction.
type fakeTelemetrySource struct {
	fills atomic.Int64
}

func (f *fakeTelemetrySource) FillTelemetry(t *codec.Telemetry) {
	n := f.fills.Add(1)
	t.Site = 7
	t.Tuples = 1000
	t.Requests = 100 + n
	t.WindowCount = n
	t.Bounds = append(t.Bounds[:0], 10_000, 20_000, 40_000)
	t.Counts = append(t.Counts[:0], uint64(n), 0, 1, 2)
	t.SLO = append(t.SLO[:0], codec.TelemetrySLO{Name: "query-p99", Current: 0.001, Target: 0.01, Burn: 0.1})
}

func TestMuxTelemetrySubscription(t *testing.T) {
	src := &fakeTelemetrySource{}
	addr, srv := startMuxServer(t, handlerFunc(sessionEcho))
	srv.SetTelemetrySource(src)
	mc := dialMux(t, addr)

	type push struct {
		seq      uint64
		requests int64
		counts   []uint64
		slo      string
	}
	pushes := make(chan push, 64)
	cancel, err := mc.SubscribeTelemetry(MinTelemetryInterval, func(tl *codec.Telemetry) {
		pushes <- push{
			seq:      tl.Seq,
			requests: tl.Requests,
			counts:   append([]uint64(nil), tl.Counts...),
			slo:      tl.SLO[0].Name,
		}
	})
	if err != nil {
		t.Fatalf("SubscribeTelemetry: %v", err)
	}

	// Collect a few pushes: sequences must be consecutive from 1 and the
	// delta-encoded counters must reconstruct the source's absolutes.
	deadline := time.After(10 * time.Second)
	var got []push
	for len(got) < 3 {
		select {
		case p := <-pushes:
			got = append(got, p)
		case <-deadline:
			t.Fatalf("timed out with %d pushes", len(got))
		}
	}
	for i, p := range got {
		if p.seq != uint64(i+1) {
			t.Fatalf("push %d: seq %d", i, p.seq)
		}
		if want := int64(100 + i + 1); p.requests != want {
			t.Fatalf("push %d: requests %d, want %d (delta reconstruction)", i, p.requests, want)
		}
		if p.counts[0] != uint64(i+1) || p.counts[3] != 2 {
			t.Fatalf("push %d: counts %v", i, p.counts)
		}
		if p.slo != "query-p99" {
			t.Fatalf("push %d: slo %q", i, p.slo)
		}
	}
	if st := srv.TelemetryStats(); st.Subscribers != 1 || st.Pushes < 3 || st.LastPushUnixNano == 0 {
		t.Fatalf("TelemetryStats = %+v", st)
	}

	// Ordinary RPCs keep working alongside the stream.
	resp, err := mc.Call(context.Background(), &Request{Kind: KindStatus, Session: 5})
	if err != nil || resp.Size != 5 {
		t.Fatalf("Call alongside stream: %v %+v", err, resp)
	}

	// Cancel stops the pushes and retires the server's publisher.
	cancel()
	waitFor(t, time.Second, func() bool { return srv.TelemetryStats().Subscribers == 0 })
	for len(pushes) > 0 {
		<-pushes
	}
	select {
	case p := <-pushes:
		t.Fatalf("push %d after cancel", p.seq)
	case <-time.After(3 * MinTelemetryInterval):
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached within %v", timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A server with no telemetry source ignores subscriptions — the peer
// sees no pushes and no errors, exactly like an old binary — and the
// connection still serves RPCs.
func TestMuxTelemetryNoSource(t *testing.T) {
	addr, _ := startMuxServer(t, handlerFunc(sessionEcho))
	mc := dialMux(t, addr)
	var pushed atomic.Int64
	cancel, err := mc.SubscribeTelemetry(MinTelemetryInterval, func(*codec.Telemetry) { pushed.Add(1) })
	if err != nil {
		t.Fatalf("SubscribeTelemetry: %v", err)
	}
	defer cancel()
	resp, err := mc.Call(context.Background(), &Request{Kind: KindStatus, Session: 9})
	if err != nil || resp.Size != 9 {
		t.Fatalf("Call: %v %+v", err, resp)
	}
	time.Sleep(3 * MinTelemetryInterval)
	if n := pushed.Load(); n != 0 {
		t.Fatalf("%d pushes from a source-less server", n)
	}
}

// SubscribeTelemetry must reach the mux client through a full wrapper
// stack (Instrumented(Metered(Delayed(Retry(mux))))), and report
// ErrTelemetryUnsupported against a v1 peer — the legacy-build fallback.
func TestSubscribeTelemetryThroughStack(t *testing.T) {
	src := &fakeTelemetrySource{}
	addr, srv := startMuxServer(t, handlerFunc(sessionEcho))
	srv.SetTelemetrySource(src)

	retry := Retry(func() (Client, error) { return DialAuto(addr, nil) }, 3)
	var meter Meter
	stack := Instrumented(Metered(Delayed(retry, time.Millisecond), &meter), obs.NewRegistry(), "0")
	t.Cleanup(func() { stack.Close() })

	pushes := make(chan uint64, 16)
	cancel, err := SubscribeTelemetry(stack, MinTelemetryInterval, func(tl *codec.Telemetry) {
		pushes <- tl.Seq
	})
	if err != nil {
		t.Fatalf("SubscribeTelemetry through stack: %v", err)
	}
	defer cancel()
	select {
	case <-pushes:
	case <-time.After(10 * time.Second):
		t.Fatal("no push through wrapper stack")
	}
}

func TestSubscribeTelemetryV1Fallback(t *testing.T) {
	// A legacy-only server rejects the v2 hello, so DialAuto hands back a
	// v1 gob client — and telemetry subscription must fail cleanly, not
	// hang or panic.
	lis, srv := startLegacyServer(t)
	old := muxHandshakeTimeout
	muxHandshakeTimeout = 200 * time.Millisecond
	defer func() { muxHandshakeTimeout = old }()

	cl, err := DialAuto(lis, nil)
	if err != nil {
		t.Fatalf("DialAuto: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	_ = srv
	if _, err := SubscribeTelemetry(cl, time.Second, func(*codec.Telemetry) {}); !errors.Is(err, ErrTelemetryUnsupported) {
		t.Fatalf("subscribe over v1 = %v, want ErrTelemetryUnsupported", err)
	}
	// The v1 connection still answers RPCs.
	resp, err := cl.Call(context.Background(), &Request{Kind: KindStatus, Session: 4})
	if err != nil || resp.Size != 4 {
		t.Fatalf("v1 Call after failed subscribe: %v %+v", err, resp)
	}

	// The helper also rejects transports with no unwrap path at all.
	if _, err := SubscribeTelemetry(Local(handlerFunc(sessionEcho)), time.Second, func(*codec.Telemetry) {}); !errors.Is(err, ErrTelemetryUnsupported) {
		t.Fatalf("subscribe over Local = %v, want ErrTelemetryUnsupported", err)
	}
}

func startLegacyServer(t *testing.T) (string, *Server) {
	t.Helper()
	addr, s := startMuxServer(t, handlerFunc(sessionEcho))
	s.SetLegacyOnly(true)
	return addr, s
}

// The publisher's steady-state push path — fill, delta-encode, frame,
// write — must not allocate (the flight-recorder discipline for
// always-on paths).
func TestTelemetryPublisherZeroAlloc(t *testing.T) {
	src := &fakeTelemetrySource{}
	mw := &muxWriter{w: io.Discard}
	p := newTelemetryPublisher(src, mw, 1)
	now := time.Now().UnixNano()
	// Warm the buffers past the first full-frame anchor.
	for i := 0; i < 3; i++ {
		if err := p.push(now + int64(i)); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := p.push(now); err != nil {
			t.Fatalf("push: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("publisher push allocates %v per run, want 0", allocs)
	}
}

// Closing the client mid-stream must terminate the server's publisher
// via the dying connection (no goroutine leak waiting on a cancel that
// never comes).
func TestMuxTelemetryPublisherStopsOnDisconnect(t *testing.T) {
	src := &fakeTelemetrySource{}
	addr, srv := startMuxServer(t, handlerFunc(sessionEcho))
	srv.SetTelemetrySource(src)
	mc := dialMux(t, addr)
	if _, err := mc.SubscribeTelemetry(MinTelemetryInterval, func(*codec.Telemetry) {}); err != nil {
		t.Fatalf("SubscribeTelemetry: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool { return srv.TelemetryStats().Subscribers == 1 })
	mc.Close()
	waitFor(t, 5*time.Second, func() bool { return srv.TelemetryStats().Subscribers == 0 })
}

// A concurrent mutex check: many subscribe/cancel cycles race ordinary
// calls on one connection (run under -race in CI).
func TestMuxTelemetryConcurrentWithCalls(t *testing.T) {
	src := &fakeTelemetrySource{}
	addr, srv := startMuxServer(t, handlerFunc(sessionEcho))
	srv.SetTelemetrySource(src)
	mc := dialMux(t, addr)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				cancel, err := mc.SubscribeTelemetry(MinTelemetryInterval, func(*codec.Telemetry) {})
				if err != nil {
					t.Errorf("subscribe: %v", err)
					return
				}
				if _, err := mc.Call(context.Background(), &Request{Kind: KindStatus, Session: 1}); err != nil {
					t.Errorf("call: %v", err)
					return
				}
				cancel()
			}
		}()
	}
	wg.Wait()
	waitFor(t, 5*time.Second, func() bool { return srv.TelemetryStats().Subscribers == 0 })
}
