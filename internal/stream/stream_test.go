package stream

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/uncertain"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0.3, nil); err == nil {
		t.Error("capacity 0 must fail")
	}
	if _, err := New(10, 0, nil); err == nil {
		t.Error("q=0 must fail")
	}
	if _, err := New(10, 1.1, nil); err == nil {
		t.Error("q>1 must fail")
	}
	if _, err := New(10, 0.3, nil); err != nil {
		t.Errorf("valid window rejected: %v", err)
	}
}

func TestAppendValidation(t *testing.T) {
	w, err := New(4, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(uncertain.Tuple{ID: 1, Point: geom.Point{1}, Prob: 2}); err == nil {
		t.Error("invalid tuple must be rejected")
	}
	ok := uncertain.Tuple{ID: 1, Point: geom.Point{0.9}, Prob: 0.9}
	if _, err := w.Append(ok); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(ok); err == nil {
		t.Error("duplicate live id must be rejected")
	}
}

func randomStreamTuple(r *rand.Rand, id uncertain.TupleID, d int) uncertain.Tuple {
	p := make(geom.Point, d)
	for j := range p {
		p[j] = r.Float64()
	}
	return uncertain.Tuple{ID: id, Point: p, Prob: 0.05 + 0.95*r.Float64()}
}

// The core property: at every step the window's answer equals the
// brute-force probabilistic skyline of its live contents.
func TestSlidingSkylineMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 10; trial++ {
		d := 1 + r.Intn(3)
		capacity := 5 + r.Intn(60)
		q := []float64{0.1, 0.3, 0.6}[r.Intn(3)]
		w, err := New(capacity, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		for step := 1; step <= 400; step++ {
			if _, err := w.Append(randomStreamTuple(r, uncertain.TupleID(step), d)); err != nil {
				t.Fatal(err)
			}
			if step%7 != 0 {
				continue
			}
			got := w.Skyline()
			want := w.Contents().Skyline(q, nil)
			if !uncertain.MembersEqual(got, want, 1e-6) {
				t.Fatalf("trial %d step %d (cap=%d q=%v): window answer %d, oracle %d",
					trial, step, capacity, q, len(got), len(want))
			}
		}
		if w.Len() != capacity {
			t.Fatalf("window length %d, want %d", w.Len(), capacity)
		}
	}
}

func TestSubspaceWindow(t *testing.T) {
	r := rand.New(rand.NewSource(102))
	dims := []int{0, 2}
	w, err := New(30, 0.3, dims)
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 200; step++ {
		if _, err := w.Append(randomStreamTuple(r, uncertain.TupleID(step), 3)); err != nil {
			t.Fatal(err)
		}
	}
	got := w.Skyline()
	want := w.Contents().Skyline(0.3, dims)
	if !uncertain.MembersEqual(got, want, 1e-6) {
		t.Fatalf("subspace window mismatch: %d vs %d", len(got), len(want))
	}
}

func TestEvictionReturnsOldest(t *testing.T) {
	w, err := New(2, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id uncertain.TupleID) uncertain.Tuple {
		return uncertain.Tuple{ID: id, Point: geom.Point{float64(id)}, Prob: 0.5}
	}
	for id := uncertain.TupleID(1); id <= 2; id++ {
		ev, err := w.Append(mk(id))
		if err != nil || ev != nil {
			t.Fatalf("unexpected eviction %v err %v", ev, err)
		}
	}
	ev, err := w.Append(mk(3))
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil || ev.ID != 1 {
		t.Fatalf("evicted %v, want tuple 1", ev)
	}
	if w.Len() != 2 {
		t.Fatalf("Len = %d", w.Len())
	}
}

func TestEvictionRestoresDominatedTuples(t *testing.T) {
	// A strong old dominator suppresses a tuple; once the dominator slides
	// out, the tuple must re-enter the answer. This is exactly why the
	// candidate set must keep dominated-but-future-viable tuples.
	w, err := New(3, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	dominator := uncertain.Tuple{ID: 1, Point: geom.Point{0.1, 0.1}, Prob: 0.9}
	victim := uncertain.Tuple{ID: 2, Point: geom.Point{0.5, 0.5}, Prob: 0.8}
	filler := uncertain.Tuple{ID: 3, Point: geom.Point{0.9, 0.9}, Prob: 0.1}
	for _, tu := range []uncertain.Tuple{dominator, victim, filler} {
		if _, err := w.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	// victim: 0.8 × (1−0.9) = 0.08 < 0.3 — out for now, but candidate.
	for _, m := range w.Skyline() {
		if m.Tuple.ID == victim.ID {
			t.Fatal("suppressed tuple must not be in the answer yet")
		}
	}
	// Push the dominator out.
	if _, err := w.Append(uncertain.Tuple{ID: 4, Point: geom.Point{0.95, 0.95}, Prob: 0.1}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range w.Skyline() {
		if m.Tuple.ID == victim.ID {
			found = true
			if math.Abs(m.Prob-0.8) > 1e-9 {
				t.Fatalf("restored probability %v, want 0.8", m.Prob)
			}
		}
	}
	if !found {
		t.Fatal("tuple must re-qualify once its only dominator expires")
	}
}

func TestPermanentDropByYoungerDominator(t *testing.T) {
	// A *younger* near-certain dominator makes the victim permanently
	// hopeless: it must leave the candidate set immediately.
	w, err := New(10, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := uncertain.Tuple{ID: 1, Point: geom.Point{0.5, 0.5}, Prob: 0.9}
	if _, err := w.Append(victim); err != nil {
		t.Fatal(err)
	}
	if w.Candidates() != 1 {
		t.Fatalf("candidates = %d", w.Candidates())
	}
	killer := uncertain.Tuple{ID: 2, Point: geom.Point{0.1, 0.1}, Prob: 0.99}
	if _, err := w.Append(killer); err != nil {
		t.Fatal(err)
	}
	if w.Candidates() != 1 { // only the killer remains
		t.Fatalf("victim should be dropped permanently: candidates = %d", w.Candidates())
	}
	if w.Drops() == 0 {
		t.Fatal("drop counter must advance")
	}
}

func TestProbabilityOneDominators(t *testing.T) {
	w, err := New(4, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := uncertain.Tuple{ID: 1, Point: geom.Point{0.5, 0.5}, Prob: 0.9}
	certain := uncertain.Tuple{ID: 2, Point: geom.Point{0.1, 0.1}, Prob: 1}
	if _, err := w.Append(certain); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(victim); err != nil {
		t.Fatal(err)
	}
	// victim's current probability is exactly 0 while the certain
	// dominator lives, but its future is clear, so it stays a candidate.
	if got := len(w.Skyline()); got != 1 {
		t.Fatalf("skyline size %d, want 1 (only the certain tuple)", got)
	}
	if w.Candidates() != 2 {
		t.Fatalf("candidates = %d, want 2", w.Candidates())
	}
	// Slide the certain dominator out.
	for id := uncertain.TupleID(3); id <= 5; id++ {
		if _, err := w.Append(uncertain.Tuple{ID: id, Point: geom.Point{0.9, 0.9}, Prob: 0.2}); err != nil {
			t.Fatal(err)
		}
	}
	want := w.Contents().Skyline(0.3, nil)
	if !uncertain.MembersEqual(w.Skyline(), want, 1e-9) {
		t.Fatal("window diverged after certain dominator expired")
	}
}

func TestCandidateSetSmallerThanWindow(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	w, err := New(500, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 3000; step++ {
		if _, err := w.Append(randomStreamTuple(r, uncertain.TupleID(step), 2)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Candidates() >= w.Len()/2 {
		t.Errorf("candidate set (%d) should be far smaller than the window (%d)",
			w.Candidates(), w.Len())
	}
	if w.Drops() == 0 {
		t.Error("long streams must exercise permanent drops")
	}
}

func TestRebuildClearsDrift(t *testing.T) {
	r := rand.New(rand.NewSource(104))
	w, err := New(100, 0.2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 5000; step++ {
		if _, err := w.Append(randomStreamTuple(r, uncertain.TupleID(step), 2)); err != nil {
			t.Fatal(err)
		}
	}
	before := w.Skyline()
	w.Rebuild()
	after := w.Skyline()
	if !uncertain.MembersEqual(before, after, 1e-6) {
		t.Fatal("rebuild changed the answer beyond drift tolerance")
	}
	want := w.Contents().Skyline(0.2, nil)
	if !uncertain.MembersEqual(after, want, 1e-12) {
		t.Fatal("rebuilt answer must be exactly the oracle")
	}
}

// Deltas must replay to exactly the sequence of answers.
func TestAppendDeltaTracksSkyline(t *testing.T) {
	r := rand.New(rand.NewSource(105))
	w, err := New(25, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	live := map[uncertain.TupleID]bool{}
	for step := 1; step <= 300; step++ {
		delta, err := w.AppendDelta(randomStreamTuple(r, uncertain.TupleID(step), 2))
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range delta.Exited {
			if !live[m.Tuple.ID] {
				t.Fatalf("step %d: %d exited without being in", step, m.Tuple.ID)
			}
			delete(live, m.Tuple.ID)
		}
		for _, m := range delta.Entered {
			if live[m.Tuple.ID] {
				t.Fatalf("step %d: %d entered twice", step, m.Tuple.ID)
			}
			live[m.Tuple.ID] = true
		}
		if step%17 == 0 {
			want := w.Skyline()
			if len(want) != len(live) {
				t.Fatalf("step %d: replayed %d members, actual %d", step, len(live), len(want))
			}
			for _, m := range want {
				if !live[m.Tuple.ID] {
					t.Fatalf("step %d: replay missing %d", step, m.Tuple.ID)
				}
			}
		}
	}
}

func TestAppendDeltaErrorPropagates(t *testing.T) {
	w, err := New(4, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := uncertain.Tuple{ID: 1, Point: geom.Point{1}, Prob: 9}
	if _, err := w.AppendDelta(bad); err == nil {
		t.Fatal("invalid tuple must fail through AppendDelta")
	}
}
