// Package stream maintains a continuous probabilistic skyline over a
// sliding window of an uncertain data stream — the centralized streaming
// setting the paper's §2.2 surveys (Zhang et al., ICDE 2009) and the
// natural companion to the distributed engine for the paper's
// sensor-stream motivation.
//
// The window holds the most recent W tuples. The maintained state is the
// *candidate set*: tuple t stays a candidate while
//
//	P(t) × Π_{u younger than t, u ≺ t} (1 − P(u)) ≥ q
//
// — the tuple's best possible future skyline probability. Older
// dominators expire before t does, so once younger dominators alone push
// t below q, t can never re-qualify within its lifetime and is discarded
// permanently; this is exactly the minimality argument of the
// candidate-set approach. The current answer is the subset of candidates
// whose probability against the *whole* live window reaches q.
//
// Appends and evictions cost O(|candidates|) dominance checks; the
// candidate set is typically a tiny fraction of the window.
package stream

import (
	"errors"
	"fmt"

	"repro/internal/uncertain"
)

// Window is a sliding-window continuous skyline operator. It is not safe
// for concurrent use; wrap with a mutex if multiple goroutines feed it.
type Window struct {
	capacity int
	q        float64
	dims     []int

	// ring holds the live tuples in arrival order (oldest first).
	ring []uncertain.Tuple

	// candidates maps tuple ID to its maintained state.
	candidates map[uncertain.TupleID]*candidate

	// evictions and drops count discarded tuples for diagnostics.
	evictions int
	drops     int
}

// candidate tracks the two survival products of one candidate tuple. To
// stay exact when dominators carry probability 1, the product over
// (1 − P) factors excludes P = 1 dominators, which are counted
// separately.
type candidate struct {
	tuple uncertain.Tuple

	// future: survival against younger dominators only.
	futureProd float64
	futureOnes int
	// current: survival against every live dominator.
	currentProd float64
	currentOnes int
}

func (c *candidate) futureProb() float64 {
	if c.futureOnes > 0 {
		return 0
	}
	return c.tuple.Prob * c.futureProd
}

func (c *candidate) currentProb() float64 {
	if c.currentOnes > 0 {
		return 0
	}
	return c.tuple.Prob * c.currentProd
}

// New builds a sliding window of the given capacity and threshold over
// dims-restricted dominance (nil = full space).
func New(capacity int, q float64, dims []int) (*Window, error) {
	if capacity < 1 {
		return nil, errors.New("stream: capacity must be >= 1")
	}
	if !(q > 0 && q <= 1) {
		return nil, fmt.Errorf("stream: threshold %v outside (0,1]", q)
	}
	return &Window{
		capacity:   capacity,
		q:          q,
		dims:       dims,
		candidates: make(map[uncertain.TupleID]*candidate),
	}, nil
}

// Len returns the number of live tuples.
func (w *Window) Len() int { return len(w.ring) }

// Candidates returns the current candidate-set size — the memory the
// operator actually needs beyond the raw window.
func (w *Window) Candidates() int { return len(w.candidates) }

// Drops returns how many tuples were discarded from the candidate set
// before expiry (proof of the candidate rule's pruning power).
func (w *Window) Drops() int { return w.drops }

// Append pushes one tuple, evicting the oldest when the window is full,
// and updates the candidate set. It returns the evicted tuple, if any.
func (w *Window) Append(tu uncertain.Tuple) (*uncertain.Tuple, error) {
	if err := tu.Validate(0); err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	if _, dup := w.candidates[tu.ID]; dup {
		return nil, fmt.Errorf("stream: duplicate tuple id %d", tu.ID)
	}
	var evicted *uncertain.Tuple
	if len(w.ring) == w.capacity {
		old := w.ring[0]
		w.ring = w.ring[1:]
		w.evict(old)
		evicted = &old
	}

	// The newcomer dominates: every candidate it dominates loses both
	// future and current survival mass (the newcomer is younger than all).
	for id, c := range w.candidates {
		if tu.Dominates(c.tuple, w.dims) {
			if tu.Prob == 1 {
				c.futureOnes++
				c.currentOnes++
			} else {
				c.futureProd *= 1 - tu.Prob
				c.currentProd *= 1 - tu.Prob
			}
			if c.futureProb() < w.q {
				delete(w.candidates, id)
				w.drops++
			}
		}
	}

	// The newcomer's own state: no younger tuples exist yet, so its
	// future product is 1; its current product accumulates every live
	// dominator.
	nc := &candidate{tuple: tu.Clone(), futureProd: 1, currentProd: 1}
	for _, live := range w.ring {
		if live.Point.DominatesIn(tu.Point, w.dims) {
			if live.Prob == 1 {
				nc.currentOnes++
			} else {
				nc.currentProd *= 1 - live.Prob
			}
		}
	}
	w.ring = append(w.ring, tu.Clone())
	if nc.futureProb() >= w.q {
		w.candidates[tu.ID] = nc
	} else {
		w.drops++
	}
	return evicted, nil
}

// evict removes the expired tuple's influence: candidates it dominated
// regain current survival mass (it was older than everything, so the
// future products are untouched).
func (w *Window) evict(old uncertain.Tuple) {
	w.evictions++
	delete(w.candidates, old.ID)
	for _, c := range w.candidates {
		if old.Dominates(c.tuple, w.dims) {
			if old.Prob == 1 {
				c.currentOnes--
			} else {
				c.currentProd /= 1 - old.Prob
				if c.currentProd > 1 {
					c.currentProd = 1 // numerical guard
				}
			}
		}
	}
}

// Skyline returns the current probabilistic skyline of the window,
// sorted by descending probability.
func (w *Window) Skyline() []uncertain.SkylineMember {
	out := make([]uncertain.SkylineMember, 0, len(w.candidates))
	for _, c := range w.candidates {
		if p := c.currentProb(); p >= w.q {
			out = append(out, uncertain.SkylineMember{Tuple: c.tuple.Clone(), Prob: p})
		}
	}
	uncertain.SortMembers(out)
	return out
}

// Contents returns a copy of the live window in arrival order, for
// verification and checkpointing.
func (w *Window) Contents() uncertain.DB {
	return append(uncertain.DB(nil), w.ring...).Clone()
}

// Rebuild recomputes every candidate product from scratch, clearing the
// floating-point drift that long multiply/divide chains accumulate. Call
// it periodically on very long streams (the tests bound the drift; a
// rebuild every ~10^6 appends is ample).
func (w *Window) Rebuild() {
	for _, c := range w.candidates {
		c.futureProd, c.futureOnes = 1, 0
		c.currentProd, c.currentOnes = 1, 0
		younger := false
		for _, live := range w.ring {
			if live.ID == c.tuple.ID {
				younger = true
				continue
			}
			if !live.Point.DominatesIn(c.tuple.Point, w.dims) {
				continue
			}
			if live.Prob == 1 {
				c.currentOnes++
				if younger {
					c.futureOnes++
				}
			} else {
				c.currentProd *= 1 - live.Prob
				if younger {
					c.futureProd *= 1 - live.Prob
				}
			}
		}
	}
}

// Delta describes how the answer set changed across one arrival.
type Delta struct {
	// Entered lists tuples that joined the skyline (including re-entries
	// after a dominator expired).
	Entered []uncertain.SkylineMember
	// Exited lists tuples that left it (expiry or new domination).
	Exited []uncertain.SkylineMember
}

// AppendDelta is Append plus an exact diff of the answer set, for
// continuous consumers that react to changes rather than re-reading the
// whole skyline. It costs one extra O(candidates) pass per arrival.
func (w *Window) AppendDelta(tu uncertain.Tuple) (Delta, error) {
	before := make(map[uncertain.TupleID]float64, len(w.candidates))
	for id, c := range w.candidates {
		if p := c.currentProb(); p >= w.q {
			before[id] = p
		}
	}
	if _, err := w.Append(tu); err != nil {
		return Delta{}, err
	}
	var delta Delta
	after := make(map[uncertain.TupleID]bool, len(w.candidates))
	for id, c := range w.candidates {
		p := c.currentProb()
		if p < w.q {
			continue
		}
		after[id] = true
		if _, was := before[id]; !was {
			delta.Entered = append(delta.Entered, uncertain.SkylineMember{Tuple: c.tuple.Clone(), Prob: p})
		}
	}
	for id, p := range before {
		if !after[id] {
			// The tuple may be gone entirely; report its last known state.
			member := uncertain.SkylineMember{Prob: p}
			if c, ok := w.candidates[id]; ok {
				member.Tuple = c.tuple.Clone()
			} else {
				member.Tuple = uncertain.Tuple{ID: id}
			}
			delta.Exited = append(delta.Exited, member)
		}
	}
	uncertain.SortMembers(delta.Entered)
	uncertain.SortMembers(delta.Exited)
	return delta, nil
}
