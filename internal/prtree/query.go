package prtree

import (
	"repro/internal/geom"
	"repro/internal/uncertain"
)

// Search visits every tuple inside the query window rect (boundaries
// included); fn returning false stops the search.
func (t *Tree) Search(rect geom.Rect, fn func(uncertain.Tuple) bool) {
	var walk func(n *node) bool
	walk = func(n *node) bool {
		for i := range n.entries {
			e := &n.entries[i]
			if n.leaf {
				if rect.ContainsPoint(e.tuple.Point) && !fn(e.tuple) {
					return false
				}
				continue
			}
			// Descend only into overlapping subtrees.
			if overlaps(e.rect, rect) && !walk(e.child) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}

func overlaps(a, b geom.Rect) bool {
	if a.IsEmpty() || b.IsEmpty() || len(a.Lo) != len(b.Lo) {
		return false
	}
	for i := range a.Lo {
		if a.Hi[i] < b.Lo[i] || b.Hi[i] < a.Lo[i] {
			return false
		}
	}
	return true
}

// Dominators visits every stored tuple that dominates p in the subspace
// dims (nil = full space), skipping the tuple with ID self (so a stored
// tuple can query its own dominators). This is the paper's §6.3 window
// query: the window spans from the space origin to p.
func (t *Tree) Dominators(p geom.Point, dims []int, self uncertain.TupleID, fn func(uncertain.Tuple) bool) {
	var walk func(n *node) bool
	walk = func(n *node) bool {
		for i := range n.entries {
			e := &n.entries[i]
			if n.leaf {
				if e.tuple.ID != self && e.tuple.Point.DominatesIn(p, dims) && !fn(e.tuple) {
					return false
				}
				continue
			}
			if e.rect.MayContainDominatorOf(p, dims) && !walk(e.child) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}

// CrossSkyProb computes eq. 9 for an arbitrary probe tuple against the
// indexed database: Π over stored dominators of probe (excluding any stored
// tuple sharing probe's ID) of (1 − P). Subtrees that lie entirely inside
// the dominance region contribute their pre-aggregated product without
// being expanded, which is what makes the feedback evaluation at local
// sites (§6.3) sublinear in practice.
func (t *Tree) CrossSkyProb(probe uncertain.Tuple, dims []int) float64 {
	prob := 1.0
	var walk func(n *node)
	walk = func(n *node) {
		for i := range n.entries {
			e := &n.entries[i]
			if n.leaf {
				if e.tuple.ID != probe.ID && e.tuple.Point.DominatesIn(probe.Point, dims) {
					prob *= 1 - e.tuple.Prob
				}
				continue
			}
			if !e.rect.MayContainDominatorOf(probe.Point, dims) {
				continue
			}
			// Whole-subtree shortcut: when even the far corner of the
			// subtree dominates the probe, every contained tuple does,
			// so the cached product applies (the probe itself can never
			// be inside such a subtree — nothing dominates itself).
			if e.rect.Hi.DominatesIn(probe.Point, dims) {
				prob *= e.prodInv
				continue
			}
			walk(e.child)
		}
	}
	walk(t.root)
	return prob
}

// SkyProb computes eq. 3 for probe against the indexed database:
// P(probe) × CrossSkyProb(probe).
func (t *Tree) SkyProb(probe uncertain.Tuple, dims []int) float64 {
	return probe.Prob * t.CrossSkyProb(probe, dims)
}
