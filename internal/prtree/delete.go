package prtree

import (
	"repro/internal/geom"
	"repro/internal/uncertain"
)

// Delete removes the tuple with the given ID located at point p. The point
// narrows the search to subtrees whose rectangle contains it, per the
// paper's §5.4 ("a local index is searched according to the traditional
// top-down approach to locate and delete the data item"). Returns
// ErrNotFound when no such tuple exists.
func (t *Tree) Delete(id uncertain.TupleID, p geom.Point) error {
	var orphans []entry
	removed := t.remove(t.root, id, p, &orphans)
	if !removed {
		return ErrNotFound
	}
	t.size--
	// Shrink the root when it lost all children but one interior entry.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &node{leaf: true}
	}
	// Reinsert entries orphaned by condensed nodes. Leaf-level orphans are
	// whole tuples; deeper orphans are subtrees whose tuples are re-added
	// individually, the simplest correct CondenseTree variant.
	for _, orphan := range orphans {
		t.reinsert(orphan)
	}
	return nil
}

func (t *Tree) reinsert(e entry) {
	if e.child == nil {
		split := t.insert(t.root, e)
		if split != nil {
			old := t.root
			t.root = &node{leaf: false, entries: []entry{wrap(old), wrap(split)}}
		}
		return
	}
	n := e.child
	for i := range n.entries {
		t.reinsert(n.entries[i])
	}
}

// remove deletes the matching leaf entry under n, collecting underfull
// nodes' remaining entries into orphans. It reports whether a tuple was
// removed.
func (t *Tree) remove(n *node, id uncertain.TupleID, p geom.Point, orphans *[]entry) bool {
	if n.leaf {
		for i := range n.entries {
			e := &n.entries[i]
			if e.tuple.ID == id && e.tuple.Point.Equal(p) {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				return true
			}
		}
		return false
	}
	for i := range n.entries {
		e := &n.entries[i]
		if !e.rect.ContainsPoint(p) {
			continue
		}
		if !t.remove(e.child, id, p, orphans) {
			continue
		}
		if len(e.child.entries) < t.min {
			// Condense: orphan the whole child and drop it from n.
			*orphans = append(*orphans, e.child.entries...)
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
		} else {
			e.recompute()
		}
		return true
	}
	return false
}

// Update replaces the tuple identified by id/oldPoint with the new tuple, a
// delete followed by an insert.
func (t *Tree) Update(id uncertain.TupleID, oldPoint geom.Point, tu uncertain.Tuple) error {
	if err := t.Delete(id, oldPoint); err != nil {
		return err
	}
	t.Insert(tu)
	return nil
}
