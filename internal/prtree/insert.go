package prtree

import "repro/internal/uncertain"

// Insert adds one tuple using the classic Guttman algorithm (least-area-
// enlargement descent, quadratic split) while keeping the probabilistic
// aggregates fresh along the insertion path.
func (t *Tree) Insert(tu uncertain.Tuple) {
	e := leafEntry(tu.Clone())
	split := t.insert(t.root, e)
	if split != nil {
		old := t.root
		t.root = &node{leaf: false, entries: []entry{wrap(old), wrap(split)}}
	}
	t.size++
}

// insert places e under n and returns a new sibling node when n overflowed
// and split; the caller is responsible for wiring the sibling in.
func (t *Tree) insert(n *node, e entry) *node {
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.max {
			return t.splitNode(n)
		}
		return nil
	}
	best := t.chooseSubtree(n, e)
	split := t.insert(n.entries[best].child, e)
	n.entries[best].recompute()
	if split != nil {
		n.entries = append(n.entries, wrap(split))
		if len(n.entries) > t.max {
			return t.splitNode(n)
		}
	}
	return nil
}

// chooseSubtree picks the child whose rectangle needs least enlargement to
// absorb e, breaking ties by smaller area.
func (t *Tree) chooseSubtree(n *node, e entry) int {
	best := 0
	bestGrow := n.entries[0].rect.Enlargement(e.rect)
	bestArea := n.entries[0].rect.Area()
	for i := 1; i < len(n.entries); i++ {
		grow := n.entries[i].rect.Enlargement(e.rect)
		area := n.entries[i].rect.Area()
		if grow < bestGrow || (grow == bestGrow && area < bestArea) {
			best, bestGrow, bestArea = i, grow, area
		}
	}
	return best
}

// splitNode divides an overflowing node in place using Guttman's quadratic
// split and returns the newly created sibling.
func (t *Tree) splitNode(n *node) *node {
	entries := n.entries
	seedA, seedB := pickSeeds(entries)
	groupA := []entry{entries[seedA]}
	groupB := []entry{entries[seedB]}
	rectA := entries[seedA].rect.Clone()
	rectB := entries[seedB].rect.Clone()

	rest := make([]entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != seedA && i != seedB {
			rest = append(rest, e)
		}
	}

	for len(rest) > 0 {
		// Force assignment when one group must take everything left to
		// reach minimum fill.
		if len(groupA)+len(rest) == t.min {
			groupA = append(groupA, rest...)
			for _, e := range rest {
				rectA = rectA.ExpandRect(e.rect)
			}
			break
		}
		if len(groupB)+len(rest) == t.min {
			groupB = append(groupB, rest...)
			for _, e := range rest {
				rectB = rectB.ExpandRect(e.rect)
			}
			break
		}
		// pickNext: the entry with the strongest preference.
		bestIdx, bestDiff := 0, -1.0
		for i, e := range rest {
			dA := rectA.Enlargement(e.rect)
			dB := rectB.Enlargement(e.rect)
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestIdx, bestDiff = i, diff
			}
		}
		e := rest[bestIdx]
		rest[bestIdx] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]

		dA := rectA.Enlargement(e.rect)
		dB := rectB.Enlargement(e.rect)
		switch {
		case dA < dB:
			groupA = append(groupA, e)
			rectA = rectA.ExpandRect(e.rect)
		case dB < dA:
			groupB = append(groupB, e)
			rectB = rectB.ExpandRect(e.rect)
		case len(groupA) <= len(groupB):
			groupA = append(groupA, e)
			rectA = rectA.ExpandRect(e.rect)
		default:
			groupB = append(groupB, e)
			rectB = rectB.ExpandRect(e.rect)
		}
	}

	n.entries = groupA
	return &node{leaf: n.leaf, entries: groupB}
}

// pickSeeds returns the pair of entries whose combined rectangle wastes the
// most area, the quadratic-split seed heuristic.
func pickSeeds(entries []entry) (int, int) {
	seedA, seedB, worst := 0, 1, -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			waste := entries[i].rect.ExpandRect(entries[j].rect).Area() -
				entries[i].rect.Area() - entries[j].rect.Area()
			if waste > worst {
				seedA, seedB, worst = i, j, waste
			}
		}
	}
	return seedA, seedB
}
