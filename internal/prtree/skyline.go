package prtree

import (
	"container/heap"

	"repro/internal/uncertain"
)

// LocalSkyline computes the probabilistic skyline of the indexed database
// (§6.2): every tuple whose skyline probability (eq. 3) is at least q,
// sorted by descending probability. It follows the BBS discipline — a
// min-heap on the L1 distance of entry rectangles to the origin — and
// prunes a subtree as soon as its best possible skyline probability
//
//	P2(subtree) × Π_{t' ∈ D, t' ≺ rect.Lo} (1 − P(t'))
//
// drops below q. The product is evaluated with a dominance-window query on
// the tree itself, which strictly sharpens the paper's single-feedback-point
// bound while remaining sound: every tuple dominating the subtree's best
// corner dominates each tuple inside it.
func (t *Tree) LocalSkyline(q float64, dims []int) []uncertain.SkylineMember {
	var out []uncertain.SkylineMember
	t.LocalSkylineFunc(q, dims, func(m uncertain.SkylineMember) bool {
		out = append(out, m)
		return true
	})
	uncertain.SortMembers(out)
	return out
}

// LocalSkylineFunc streams qualified skyline members in BBS (ascending L1)
// order, which delivers near-origin members first; fn returning false stops
// the search. Members are NOT probability-sorted — callers wanting the
// paper's descending-probability order should collect and sort (as
// LocalSkyline does).
func (t *Tree) LocalSkylineFunc(q float64, dims []int, fn func(uncertain.SkylineMember) bool) {
	if t.size == 0 || q <= 0 {
		if q <= 0 && t.size > 0 {
			// q <= 0 qualifies everything; still report exact probabilities.
			t.All(func(tu uncertain.Tuple) bool {
				return fn(uncertain.SkylineMember{Tuple: tu.Clone(), Prob: t.SkyProb(tu, dims)})
			})
		}
		return
	}

	h := &entryHeap{}
	heap.Init(h)
	push := func(e *entry) {
		// Subtree-level threshold prune (leaf entries get the exact test).
		if e.child != nil {
			probe := uncertain.Tuple{ID: uncertain.NoTuple, Point: e.rect.Lo, Prob: 1}
			if e.pmax*t.CrossSkyProb(probe, dims) < q {
				return
			}
		}
		heap.Push(h, heapItem{dist: e.rect.MinDist(dims), e: e})
	}
	for i := range t.root.entries {
		push(&t.root.entries[i])
	}
	for h.Len() > 0 {
		item := heap.Pop(h).(heapItem)
		e := item.e
		if e.child != nil {
			for i := range e.child.entries {
				push(&e.child.entries[i])
			}
			continue
		}
		if p := t.SkyProb(e.tuple, dims); p >= q {
			if !fn(uncertain.SkylineMember{Tuple: e.tuple.Clone(), Prob: p}) {
				return
			}
		}
	}
}

type heapItem struct {
	dist float64
	e    *entry
}

type entryHeap []heapItem

func (h entryHeap) Len() int            { return len(h) }
func (h entryHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h entryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
