package prtree

import (
	"math"
	"sort"

	"repro/internal/uncertain"
)

// Bulk builds a PR-tree over db with Sort-Tile-Recursive packing, the
// standard way to load a large static partition before querying begins.
// Tuples are deep-copied; db is not retained. capacity < 4 selects
// DefaultCapacity.
func Bulk(db uncertain.DB, dims, capacity int) *Tree {
	t := New(dims, capacity)
	if len(db) == 0 {
		return t
	}
	leaves := make([]entry, 0, len(db))
	for _, tu := range db {
		leaves = append(leaves, leafEntry(tu.Clone()))
	}
	strSort(leaves, 0, dims, t.max)

	// Pack leaf nodes, then repeatedly pack the level above until one node
	// remains.
	nodes := packLevel(leaves, t.max, true)
	for len(nodes) > 1 {
		upper := make([]entry, 0, len(nodes))
		for _, n := range nodes {
			upper = append(upper, wrap(n))
		}
		nodes = packLevel(upper, t.max, false)
	}
	t.root = nodes[0]
	t.size = len(db)
	return t
}

// strSort orders entries with the STR tiling recursion: sort by dimension
// dim, slice into vertical slabs sized so each slab fills whole nodes, then
// recurse on the next dimension within each slab.
func strSort(entries []entry, dim, dims, capacity int) {
	if dim >= dims-1 || len(entries) <= capacity {
		sort.Slice(entries, func(i, j int) bool {
			return center(entries[i], dim) < center(entries[j], dim)
		})
		return
	}
	sort.Slice(entries, func(i, j int) bool {
		return center(entries[i], dim) < center(entries[j], dim)
	})
	nLeaves := int(math.Ceil(float64(len(entries)) / float64(capacity)))
	remDims := float64(dims - dim)
	slabCount := int(math.Ceil(math.Pow(float64(nLeaves), 1/remDims)))
	if slabCount < 1 {
		slabCount = 1
	}
	slabSize := int(math.Ceil(float64(len(entries)) / float64(slabCount)))
	if slabSize < 1 {
		slabSize = 1
	}
	for lo := 0; lo < len(entries); lo += slabSize {
		hi := lo + slabSize
		if hi > len(entries) {
			hi = len(entries)
		}
		strSort(entries[lo:hi], dim+1, dims, capacity)
	}
}

func center(e entry, dim int) float64 {
	if dim >= len(e.rect.Lo) {
		return 0
	}
	return (e.rect.Lo[dim] + e.rect.Hi[dim]) / 2
}

// packLevel groups consecutive entries into nodes of up to capacity
// entries, spreading the counts evenly so no node violates the minimum
// fill (except a lone root, which is exempt).
func packLevel(entries []entry, capacity int, leaf bool) []*node {
	n := len(entries)
	count := (n + capacity - 1) / capacity
	if count == 0 {
		count = 1
	}
	nodes := make([]*node, 0, count)
	base := n / count
	extra := n % count
	idx := 0
	for i := 0; i < count; i++ {
		size := base
		if i < extra {
			size++
		}
		nd := &node{leaf: leaf, entries: append([]entry(nil), entries[idx:idx+size]...)}
		nodes = append(nodes, nd)
		idx += size
	}
	return nodes
}
