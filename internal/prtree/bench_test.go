package prtree

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/uncertain"
)

func benchDB(n, d int) uncertain.DB {
	return randomDB(rand.New(rand.NewSource(7)), n, d)
}

func BenchmarkBulkLoad(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		db := benchDB(n, 3)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Bulk(db, 3, 0)
			}
		})
	}
}

func BenchmarkInsert(b *testing.B) {
	db := benchDB(100000, 3)
	tr := New(3, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(db[i%len(db)].Clone())
	}
}

func BenchmarkDelete(b *testing.B) {
	db := benchDB(200000, 3)
	tr := Bulk(db, 3, 0)
	b.ResetTimer()
	for i := 0; i < b.N && i < len(db); i++ {
		if err := tr.Delete(db[i].ID, db[i].Point); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrossSkyProb(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		db := benchDB(n, 3)
		tr := Bulk(db, 3, 0)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr.CrossSkyProb(db[i%len(db)], nil)
			}
		})
	}
}

func BenchmarkLocalSkyline(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		db := benchDB(n, 3)
		tr := Bulk(db, 3, 0)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				size = len(tr.LocalSkyline(0.3, nil))
			}
			b.ReportMetric(float64(size), "skyline")
		})
	}
}

func BenchmarkDominators(b *testing.B) {
	db := benchDB(100000, 3)
	tr := Bulk(db, 3, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		tr.Dominators(db[i%len(db)].Point, nil, db[i%len(db)].ID, func(uncertain.Tuple) bool {
			count++
			return true
		})
	}
}

// BenchmarkLinearScanSkyProb is the no-index strawman CrossSkyProb for
// comparison with the PR-tree path above.
func BenchmarkLinearScanSkyProb(b *testing.B) {
	db := benchDB(100000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.CrossSkyProb(db[i%len(db)], nil)
	}
}
