package prtree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/uncertain"
)

func TestDominatedMatchesScan(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		d := 1 + r.Intn(3)
		db := randomDB(r, 1+r.Intn(250), d)
		tr := Bulk(db, d, 4+r.Intn(12))
		probe := db[r.Intn(len(db))]
		var dims []int
		if d > 1 && r.Intn(2) == 0 {
			dims = []int{r.Intn(d)}
		}
		want := map[uncertain.TupleID]bool{}
		for _, tu := range db {
			if tu.ID != probe.ID && probe.Point.DominatesIn(tu.Point, dims) {
				want[tu.ID] = true
			}
		}
		got := map[uncertain.TupleID]bool{}
		tr.Dominated(probe.Point, dims, probe.ID, func(tu uncertain.Tuple) bool {
			got[tu.ID] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d dominated, want %d", trial, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d: missing %d", trial, id)
			}
		}
	}
}

func TestDominatedEarlyStop(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	db := randomDB(r, 200, 2)
	tr := Bulk(db, 2, 8)
	n := 0
	tr.Dominated(geom.Point{0, 0}, nil, uncertain.NoTuple, func(uncertain.Tuple) bool {
		n++
		return n < 4
	})
	if n != 4 {
		t.Fatalf("visited %d, want early stop at 4", n)
	}
}

func TestDominatedCandidatesMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	for trial := 0; trial < 40; trial++ {
		d := 1 + r.Intn(3)
		db := randomDB(r, 50+r.Intn(250), d)
		tr := Bulk(db, d, 4+r.Intn(12))
		probe := db[r.Intn(len(db))]
		q := []float64{0.1, 0.3, 0.6}[r.Intn(3)]
		var dims []int
		if d > 1 && r.Intn(2) == 0 {
			dims = []int{r.Intn(d)}
		}
		want := map[uncertain.TupleID]float64{}
		for _, tu := range db {
			if tu.ID == probe.ID || !probe.Point.DominatesIn(tu.Point, dims) {
				continue
			}
			if p := db.SkyProb(tu, dims); p >= q {
				want[tu.ID] = p
			}
		}
		got := map[uncertain.TupleID]float64{}
		tr.DominatedCandidates(probe.Point, dims, probe.ID, q, func(m uncertain.SkylineMember) bool {
			got[m.Tuple.ID] = m.Prob
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d q=%v dims=%v: %d candidates, want %d", trial, q, dims, len(got), len(want))
		}
		for id, w := range want {
			if math.Abs(got[id]-w) > 1e-9 {
				t.Fatalf("trial %d: candidate %d prob %v, want %v", trial, id, got[id], w)
			}
		}
	}
}

func TestDominatedCandidatesZeroThreshold(t *testing.T) {
	r := rand.New(rand.NewSource(74))
	db := randomDB(r, 100, 2)
	tr := Bulk(db, 2, 8)
	probe := geom.Point{0, 0}
	count := 0
	tr.DominatedCandidates(probe, nil, uncertain.NoTuple, 0, func(uncertain.SkylineMember) bool {
		count++
		return true
	})
	want := 0
	for _, tu := range db {
		if probe.Dominates(tu.Point) {
			want++
		}
	}
	if count != want {
		t.Fatalf("q=0 visited %d, want all %d dominated", count, want)
	}
}

func TestDominatedCandidatesEarlyStop(t *testing.T) {
	r := rand.New(rand.NewSource(75))
	db := randomDB(r, 300, 2)
	tr := Bulk(db, 2, 8)
	n := 0
	tr.DominatedCandidates(geom.Point{0, 0}, nil, uncertain.NoTuple, 0.05, func(uncertain.SkylineMember) bool {
		n++
		return n < 2
	})
	if n > 2 {
		t.Fatalf("early stop ignored: visited %d", n)
	}
}
