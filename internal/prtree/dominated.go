package prtree

import (
	"repro/internal/geom"
	"repro/internal/uncertain"
)

// Dominated visits every stored tuple that p dominates in the subspace
// dims (nil = full space), skipping the tuple with ID self. It is the
// mirror image of Dominators and powers the §5.4 incremental update
// maintenance, which must find the tuples whose skyline probability a
// deleted or inserted tuple affects.
func (t *Tree) Dominated(p geom.Point, dims []int, self uncertain.TupleID, fn func(uncertain.Tuple) bool) {
	t.dominated(p, dims, self, fn)
}

func (t *Tree) dominated(p geom.Point, dims []int, self uncertain.TupleID, fn func(uncertain.Tuple) bool) {
	var walk func(n *node) bool
	walk = func(n *node) bool {
		for i := range n.entries {
			e := &n.entries[i]
			if n.leaf {
				if e.tuple.ID != self && p.DominatesIn(e.tuple.Point, dims) && !fn(e.tuple) {
					return false
				}
				continue
			}
			// A subtree can contain a tuple dominated by p only if p
			// dominates-or-equals the subtree's far (upper) corner
			// projection: every stored point is <= rect.Hi componentwise,
			// so if p exceeds rect.Hi on a compared dimension, p cannot
			// dominate anything inside.
			if p.DominatesOrEqual(e.rect.Hi, dims) && !walk(e.child) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}

// DominatedCandidates visits every stored tuple s that p dominates AND
// whose own skyline probability (eq. 3 against this partition) reaches q,
// reporting each with that probability. It is the workhorse of §5.4
// deletion maintenance: after p is deleted, only such tuples can have been
// promoted into the answer. The search prunes whole subtrees with the same
// sound bound as LocalSkyline — the subtree's maximum existential
// probability times the survival product of its best corner — so the cost
// tracks the (small) number of qualified candidates rather than the (huge)
// number of dominated tuples.
func (t *Tree) DominatedCandidates(p geom.Point, dims []int, self uncertain.TupleID, q float64, fn func(uncertain.SkylineMember) bool) {
	if q <= 0 {
		// Degenerate threshold: fall back to the unpruned walk.
		t.dominated(p, dims, self, func(tu uncertain.Tuple) bool {
			return fn(uncertain.SkylineMember{Tuple: tu.Clone(), Prob: t.SkyProb(tu, dims)})
		})
		return
	}
	var walk func(n *node) bool
	walk = func(n *node) bool {
		for i := range n.entries {
			e := &n.entries[i]
			if n.leaf {
				if e.tuple.ID == self || !p.DominatesIn(e.tuple.Point, dims) {
					continue
				}
				if e.tuple.Prob < q {
					continue // cheap upper bound: P_sky <= P(t)
				}
				if prob := t.SkyProb(e.tuple, dims); prob >= q {
					if !fn(uncertain.SkylineMember{Tuple: e.tuple.Clone(), Prob: prob}) {
						return false
					}
				}
				continue
			}
			if !p.DominatesOrEqual(e.rect.Hi, dims) {
				continue // nothing inside can be dominated by p
			}
			probe := uncertain.Tuple{ID: uncertain.NoTuple, Point: e.rect.Lo, Prob: 1}
			if e.pmax*t.CrossSkyProb(probe, dims) < q {
				continue // no tuple inside can reach the threshold
			}
			if !walk(e.child) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}
