package prtree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/uncertain"
)

func randomDB(r *rand.Rand, n, d int) uncertain.DB {
	db := make(uncertain.DB, n)
	for i := range db {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = math.Round(r.Float64()*100) / 10 // coarse grid forces ties
		}
		db[i] = uncertain.Tuple{ID: uncertain.TupleID(i + 1), Point: p, Prob: 0.05 + 0.95*r.Float64()}
	}
	return db
}

func buildBoth(t *testing.T, db uncertain.DB, d, capacity int) (bulk, incr *Tree) {
	t.Helper()
	bulk = Bulk(db, d, capacity)
	incr = New(d, capacity)
	for _, tu := range db {
		incr.Insert(tu)
	}
	for _, tree := range []*Tree{bulk, incr} {
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("invariants: %v", err)
		}
		if tree.Len() != len(db) {
			t.Fatalf("Len = %d, want %d", tree.Len(), len(db))
		}
	}
	return bulk, incr
}

func TestEmptyTree(t *testing.T) {
	tr := New(2, 8)
	if tr.Len() != 0 {
		t.Fatal("new tree must be empty")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := tr.LocalSkyline(0.3, nil); len(got) != 0 {
		t.Fatalf("skyline of empty tree = %v", got)
	}
	if got := tr.CrossSkyProb(uncertain.Tuple{ID: 1, Point: geom.Point{1, 1}, Prob: 0.5}, nil); got != 1 {
		t.Fatalf("CrossSkyProb on empty tree = %v, want 1", got)
	}
	if err := tr.Delete(1, geom.Point{1, 1}); err != ErrNotFound {
		t.Fatalf("Delete on empty tree = %v, want ErrNotFound", err)
	}
	bulk := Bulk(nil, 2, 8)
	if bulk.Len() != 0 {
		t.Fatal("bulk of nil must be empty")
	}
}

func TestSearchMatchesScan(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		d := 1 + r.Intn(3)
		db := randomDB(r, 1+r.Intn(300), d)
		bulk, incr := buildBoth(t, db, d, 4+r.Intn(12))
		lo := make(geom.Point, d)
		hi := make(geom.Point, d)
		for j := 0; j < d; j++ {
			a, b := r.Float64()*10, r.Float64()*10
			lo[j], hi[j] = math.Min(a, b), math.Max(a, b)
		}
		window := geom.Rect{Lo: lo, Hi: hi}
		want := map[uncertain.TupleID]bool{}
		for _, tu := range db {
			if window.ContainsPoint(tu.Point) {
				want[tu.ID] = true
			}
		}
		for name, tr := range map[string]*Tree{"bulk": bulk, "incr": incr} {
			got := map[uncertain.TupleID]bool{}
			tr.Search(window, func(tu uncertain.Tuple) bool {
				got[tu.ID] = true
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("%s trial %d: search found %d, want %d", name, trial, len(got), len(want))
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("%s trial %d: missing id %d", name, trial, id)
				}
			}
		}
	}
}

func TestDominatorsMatchesScan(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		d := 1 + r.Intn(3)
		db := randomDB(r, 1+r.Intn(300), d)
		bulk, incr := buildBoth(t, db, d, 4+r.Intn(12))
		probe := db[r.Intn(len(db))]
		var dims []int
		if d > 1 && r.Intn(2) == 0 {
			dims = []int{r.Intn(d)}
		}
		want := map[uncertain.TupleID]bool{}
		for _, tu := range db {
			if tu.ID != probe.ID && tu.Point.DominatesIn(probe.Point, dims) {
				want[tu.ID] = true
			}
		}
		for name, tr := range map[string]*Tree{"bulk": bulk, "incr": incr} {
			got := map[uncertain.TupleID]bool{}
			tr.Dominators(probe.Point, dims, probe.ID, func(tu uncertain.Tuple) bool {
				got[tu.ID] = true
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("%s trial %d dims %v: %d dominators, want %d", name, trial, dims, len(got), len(want))
			}
		}
	}
}

func TestCrossSkyProbMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		d := 1 + r.Intn(3)
		db := randomDB(r, 1+r.Intn(250), d)
		bulk, incr := buildBoth(t, db, d, 4+r.Intn(12))
		var dims []int
		if d > 1 && r.Intn(2) == 0 {
			dims = []int{r.Intn(d)}
		}
		// Probe both member tuples and foreign tuples.
		probes := []uncertain.Tuple{
			db[r.Intn(len(db))],
			{ID: uncertain.NoTuple, Point: randomDB(r, 1, d)[0].Point, Prob: 0.5},
		}
		for _, probe := range probes {
			want := db.CrossSkyProb(probe, dims)
			for name, tr := range map[string]*Tree{"bulk": bulk, "incr": incr} {
				got := tr.CrossSkyProb(probe, dims)
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("%s trial %d: CrossSkyProb = %v, want %v", name, trial, got, want)
				}
				gotSky := tr.SkyProb(probe, dims)
				if math.Abs(gotSky-probe.Prob*want) > 1e-9 {
					t.Fatalf("%s trial %d: SkyProb = %v, want %v", name, trial, gotSky, probe.Prob*want)
				}
			}
		}
	}
}

func TestLocalSkylineMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		d := 1 + r.Intn(4)
		db := randomDB(r, 1+r.Intn(300), d)
		bulk, incr := buildBoth(t, db, d, 4+r.Intn(12))
		q := []float64{0.1, 0.3, 0.5, 0.9}[r.Intn(4)]
		var dims []int
		if d > 2 && r.Intn(2) == 0 {
			dims = []int{0, 1}
		}
		want := db.Skyline(q, dims)
		for name, tr := range map[string]*Tree{"bulk": bulk, "incr": incr} {
			got := tr.LocalSkyline(q, dims)
			if !uncertain.MembersEqual(got, want, 1e-9) {
				t.Fatalf("%s trial %d q=%v dims=%v: skyline mismatch\n got %v\nwant %v",
					name, trial, q, dims, got, want)
			}
		}
	}
}

func TestLocalSkylineStreamOrder(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	db := randomDB(r, 200, 2)
	tr := Bulk(db, 2, 8)
	var last float64 = -1
	count := 0
	tr.LocalSkylineFunc(0.2, nil, func(m uncertain.SkylineMember) bool {
		l1 := m.Tuple.Point.L1()
		if l1 < last {
			t.Fatalf("stream not in ascending L1 order: %v after %v", l1, last)
		}
		last = l1
		count++
		return true
	})
	if count != len(db.Skyline(0.2, nil)) {
		t.Fatalf("streamed %d members, want %d", count, len(db.Skyline(0.2, nil)))
	}
	// Early stop must be honoured.
	stopped := 0
	tr.LocalSkylineFunc(0.2, nil, func(uncertain.SkylineMember) bool {
		stopped++
		return stopped < 3
	})
	if stopped != 3 {
		t.Fatalf("early stop streamed %d, want 3", stopped)
	}
}

func TestLocalSkylineZeroThresholdReportsAll(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	db := randomDB(r, 50, 2)
	tr := Bulk(db, 2, 8)
	got := tr.LocalSkyline(0, nil)
	if len(got) != len(db) {
		t.Fatalf("q=0 must report all %d tuples, got %d", len(db), len(got))
	}
	for _, m := range got {
		want := db.SkyProb(m.Tuple, nil)
		if math.Abs(m.Prob-want) > 1e-9 {
			t.Fatalf("q=0 member prob %v, want %v", m.Prob, want)
		}
	}
}

func TestDeleteThenQueriesStayCorrect(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		d := 1 + r.Intn(3)
		db := randomDB(r, 40+r.Intn(160), d)
		tr := Bulk(db, d, 4+r.Intn(8))
		live := db.Clone()
		// Delete a random half, one by one, checking invariants as we go.
		deletions := len(live) / 2
		for k := 0; k < deletions; k++ {
			i := r.Intn(len(live))
			victim := live[i]
			live = append(live[:i], live[i+1:]...)
			if err := tr.Delete(victim.ID, victim.Point); err != nil {
				t.Fatalf("trial %d: delete %v: %v", trial, victim, err)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("trial %d after delete: %v", trial, err)
			}
		}
		if tr.Len() != len(live) {
			t.Fatalf("Len = %d, want %d", tr.Len(), len(live))
		}
		got := tr.LocalSkyline(0.3, nil)
		want := live.Skyline(0.3, nil)
		if !uncertain.MembersEqual(got, want, 1e-9) {
			t.Fatalf("trial %d: post-delete skyline mismatch", trial)
		}
	}
}

func TestDeleteMissingTuple(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	db := randomDB(r, 30, 2)
	tr := Bulk(db, 2, 8)
	if err := tr.Delete(9999, geom.Point{1, 1}); err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	// Right ID, wrong location: must also be not-found.
	if err := tr.Delete(db[0].ID, geom.Point{-1, -1}); err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if tr.Len() != len(db) {
		t.Fatal("failed delete must not change size")
	}
}

func TestUpdateMovesTuple(t *testing.T) {
	tr := New(2, 8)
	old := uncertain.Tuple{ID: 1, Point: geom.Point{5, 5}, Prob: 0.5}
	tr.Insert(old)
	moved := uncertain.Tuple{ID: 1, Point: geom.Point{1, 1}, Prob: 0.9}
	if err := tr.Update(1, old.Point, moved); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	found := false
	tr.All(func(tu uncertain.Tuple) bool {
		found = tu.Point.Equal(moved.Point) && tu.Prob == moved.Prob
		return true
	})
	if !found {
		t.Fatal("updated tuple not found at new location")
	}
	if err := tr.Update(42, geom.Point{0, 0}, moved); err == nil {
		t.Fatal("updating a missing tuple must fail")
	}
}

func TestInterleavedInsertDeleteInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	tr := New(3, 6)
	var live uncertain.DB
	nextID := uncertain.TupleID(1)
	for op := 0; op < 1500; op++ {
		if len(live) == 0 || r.Float64() < 0.6 {
			tu := uncertain.Tuple{
				ID:    nextID,
				Point: geom.Point{r.Float64() * 10, r.Float64() * 10, r.Float64() * 10},
				Prob:  0.05 + 0.95*r.Float64(),
			}
			nextID++
			tr.Insert(tu)
			live = append(live, tu)
		} else {
			i := r.Intn(len(live))
			victim := live[i]
			live = append(live[:i], live[i+1:]...)
			if err := tr.Delete(victim.ID, victim.Point); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
		if op%100 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := tr.LocalSkyline(0.3, nil)
	want := live.Skyline(0.3, nil)
	if !uncertain.MembersEqual(got, want, 1e-9) {
		t.Fatal("skyline mismatch after interleaved workload")
	}
}

func TestAllEarlyStop(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	tr := Bulk(randomDB(r, 100, 2), 2, 8)
	n := 0
	tr.All(func(uncertain.Tuple) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("All visited %d, want 5", n)
	}
}

func TestBulkMatchesIncrementalSkyline(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	db := randomDB(r, 500, 3)
	bulk := Bulk(db, 3, 16)
	incr := New(3, 16)
	for _, tu := range db {
		incr.Insert(tu)
	}
	a := bulk.LocalSkyline(0.3, nil)
	b := incr.LocalSkyline(0.3, nil)
	if !uncertain.MembersEqual(a, b, 1e-9) {
		t.Fatal("bulk and incremental trees disagree")
	}
}

func TestCapacityFallback(t *testing.T) {
	tr := New(2, 1)
	if tr.max != DefaultCapacity {
		t.Fatalf("capacity fallback = %d, want %d", tr.max, DefaultCapacity)
	}
}
