package prtree

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/uncertain"
)

// FuzzTreeOperations drives a PR-tree with a byte-coded operation script
// (2 bits op, 6 bits value per byte) and checks structural invariants and
// oracle agreement after every script.
func FuzzTreeOperations(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x83, 0xC4, 0x05, 0x46})
	f.Add([]byte{0xFF, 0x00, 0xAA, 0x55})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 512 {
			script = script[:512]
		}
		tr := New(2, 5)
		var live uncertain.DB
		nextID := uncertain.TupleID(1)
		for _, b := range script {
			op := b >> 6
			v := float64(b & 0x3F)
			switch {
			case op <= 1 || len(live) == 0: // insert (biased)
				tu := uncertain.Tuple{
					ID:    nextID,
					Point: geom.Point{v, float64((b * 7) & 0x3F)},
					Prob:  0.1 + float64(b%9)/10,
				}
				nextID++
				tr.Insert(tu)
				live = append(live, tu)
			case op == 2: // delete existing
				i := int(b) % len(live)
				victim := live[i]
				live = append(live[:i], live[i+1:]...)
				if err := tr.Delete(victim.ID, victim.Point); err != nil {
					t.Fatalf("delete live tuple: %v", err)
				}
			default: // delete missing must not corrupt
				if err := tr.Delete(uncertain.TupleID(1_000_000+int(b)), geom.Point{v, v}); err != ErrNotFound {
					t.Fatalf("deleting missing tuple: %v", err)
				}
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("invariants after script: %v", err)
		}
		if tr.Len() != len(live) {
			t.Fatalf("Len %d, want %d", tr.Len(), len(live))
		}
		got := tr.LocalSkyline(0.3, nil)
		want := live.Skyline(0.3, nil)
		if !uncertain.MembersEqual(got, want, 1e-9) {
			t.Fatalf("skyline mismatch: %d vs %d", len(got), len(want))
		}
	})
}
