// Package prtree implements the Probabilistic R-tree of the paper's §6.1: a
// dynamic R-tree over uncertain tuples whose directory entries additionally
// carry the minimum and maximum existential probability of their subtree
// (P1/P2 in the paper) plus the aggregated product Π(1−P(t)) used to
// accelerate dominance-window probability queries (§6.3) and threshold-aware
// local skyline search (§6.2, BBS-style).
package prtree

import (
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/uncertain"
)

// DefaultCapacity is the default maximum node fan-out. Forty-ish entries per
// node is the classic disk-page sizing; it also performs well in memory.
const DefaultCapacity = 32

// ErrNotFound reports a Delete for a tuple the tree does not contain.
var ErrNotFound = errors.New("prtree: tuple not found")

// Tree is a probabilistic R-tree. The zero value is not usable; construct
// with New or Bulk. Tree is not safe for concurrent mutation; concurrent
// read-only queries are safe.
type Tree struct {
	dims int
	max  int // node capacity M
	min  int // minimum fill m
	root *node
	size int
}

// node is one R-tree node. Leaf nodes carry tuple entries; interior nodes
// carry child entries.
type node struct {
	leaf    bool
	entries []entry
}

// entry is one slot of a node: either a child pointer with aggregates
// (interior) or a tuple (leaf).
type entry struct {
	rect  geom.Rect
	child *node           // interior entries only
	tuple uncertain.Tuple // leaf entries only

	// Aggregates over the subtree (for a leaf entry, over the single
	// tuple): the paper's P1/P2 plus the Π(1−P) product and tuple count.
	pmin    float64
	pmax    float64
	prodInv float64 // Π over subtree of (1 − P(t))
	count   int
}

// New returns an empty PR-tree for points of dimensionality dims with node
// capacity cap (cap < 4 falls back to DefaultCapacity).
func New(dims, capacity int) *Tree {
	if capacity < 4 {
		capacity = DefaultCapacity
	}
	return &Tree{
		dims: dims,
		max:  capacity,
		min:  capacity * 2 / 5, // 40% minimum fill, the R*-tree default
		root: &node{leaf: true},
	}
}

// Dims returns the dimensionality the tree indexes.
func (t *Tree) Dims() int { return t.dims }

// Len returns the number of tuples stored.
func (t *Tree) Len() int { return t.size }

// Height returns the tree's height in levels (1 = a single leaf root).
// Leaf depth is uniform (CheckInvariants enforces it), so walking the
// first child at each level suffices.
func (t *Tree) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if n.leaf || len(n.entries) == 0 {
			break
		}
		n = n.entries[0].child
	}
	return h
}

// leafEntry builds the entry wrapping one tuple.
func leafEntry(tu uncertain.Tuple) entry {
	return entry{
		rect:    geom.RectFromPoint(tu.Point),
		tuple:   tu,
		pmin:    tu.Prob,
		pmax:    tu.Prob,
		prodInv: 1 - tu.Prob,
		count:   1,
	}
}

// recompute refreshes an interior entry's rect and aggregates from its
// child's entries.
func (e *entry) recompute() {
	n := e.child
	e.rect = geom.Rect{}
	e.pmin = 1
	e.pmax = 0
	e.prodInv = 1
	e.count = 0
	for i := range n.entries {
		c := &n.entries[i]
		e.rect = e.rect.ExpandRect(c.rect)
		if c.pmin < e.pmin {
			e.pmin = c.pmin
		}
		if c.pmax > e.pmax {
			e.pmax = c.pmax
		}
		e.prodInv *= c.prodInv
		e.count += c.count
	}
}

// wrap builds a fresh interior entry around n.
func wrap(n *node) entry {
	e := entry{child: n}
	e.recompute()
	return e
}

// CheckInvariants validates structural invariants: bounding rectangles
// contain children, aggregates match recomputation, leaf depth is uniform,
// and node occupancy respects capacity. It exists for tests.
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		return errors.New("prtree: nil root")
	}
	_, err := t.check(t.root, true)
	if err != nil {
		return err
	}
	n := wrapCount(t.root)
	if n != t.size {
		return fmt.Errorf("prtree: size %d but %d tuples reachable", t.size, n)
	}
	return nil
}

func wrapCount(n *node) int {
	if n.leaf {
		return len(n.entries)
	}
	total := 0
	for i := range n.entries {
		total += wrapCount(n.entries[i].child)
	}
	return total
}

func (t *Tree) check(n *node, isRoot bool) (depth int, err error) {
	if len(n.entries) > t.max {
		return 0, fmt.Errorf("prtree: node with %d entries exceeds capacity %d", len(n.entries), t.max)
	}
	if !isRoot && len(n.entries) < t.min {
		return 0, fmt.Errorf("prtree: underfull non-root node (%d < %d)", len(n.entries), t.min)
	}
	if n.leaf {
		for i := range n.entries {
			e := &n.entries[i]
			if e.child != nil {
				return 0, errors.New("prtree: leaf entry with child pointer")
			}
			if !e.rect.Lo.Equal(e.tuple.Point) || !e.rect.Hi.Equal(e.tuple.Point) {
				return 0, fmt.Errorf("prtree: leaf rect %v mismatches tuple %v", e.rect, e.tuple)
			}
		}
		return 1, nil
	}
	if len(n.entries) == 0 {
		return 0, errors.New("prtree: empty interior node")
	}
	childDepth := -1
	for i := range n.entries {
		e := &n.entries[i]
		if e.child == nil {
			return 0, errors.New("prtree: interior entry without child")
		}
		var fresh entry
		fresh.child = e.child
		fresh.recompute()
		if !fresh.rect.Lo.Equal(e.rect.Lo) || !fresh.rect.Hi.Equal(e.rect.Hi) {
			return 0, fmt.Errorf("prtree: stale rect: have %v want %v", e.rect, fresh.rect)
		}
		if fresh.count != e.count || fresh.pmin != e.pmin || fresh.pmax != e.pmax {
			return 0, fmt.Errorf("prtree: stale aggregates (count %d/%d pmin %v/%v pmax %v/%v)",
				e.count, fresh.count, e.pmin, fresh.pmin, e.pmax, fresh.pmax)
		}
		d, err := t.check(e.child, false)
		if err != nil {
			return 0, err
		}
		if childDepth == -1 {
			childDepth = d
		} else if childDepth != d {
			return 0, errors.New("prtree: leaves at different depths")
		}
	}
	return childDepth + 1, nil
}

// All visits every tuple in the tree in unspecified order; fn returning
// false stops the walk early.
func (t *Tree) All(fn func(uncertain.Tuple) bool) {
	var walk func(n *node) bool
	walk = func(n *node) bool {
		for i := range n.entries {
			e := &n.entries[i]
			if n.leaf {
				if !fn(e.tuple) {
					return false
				}
			} else if !walk(e.child) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}
