// Package uncertain implements the paper's uncertainty data model (§3):
// tuples with existential probabilities, possible-world semantics (eq. 1–2),
// and the closed-form skyline probability (eq. 3–5) together with the
// cross-site factor of Observation 1 (eq. 9).
//
// The package doubles as the correctness oracle for the rest of the system:
// everything here is written for clarity, not speed, and the indexed /
// distributed implementations are tested against it.
package uncertain

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// TupleID uniquely identifies a tuple across the whole (global) database.
// The paper assumes tuples are globally unique (§3.1); IDs make that
// explicit and let sites refer to feedback tuples without re-shipping them.
type TupleID uint64

// NoTuple is a sentinel ID guaranteed not to identify a real tuple; probe
// queries use it so that self-exclusion logic never skips a stored tuple.
const NoTuple TupleID = ^TupleID(0)

// Tuple is one uncertain record: a point in d-dimensional space (smaller is
// better on every attribute) plus the probability that the record truly
// exists (0 < Prob <= 1).
type Tuple struct {
	ID    TupleID
	Point geom.Point
	Prob  float64
}

// Validate reports whether t is a well-formed uncertain tuple of
// dimensionality d (d <= 0 skips the dimensionality check).
func (t Tuple) Validate(d int) error {
	if len(t.Point) == 0 {
		return fmt.Errorf("tuple %d: empty point", t.ID)
	}
	if d > 0 && len(t.Point) != d {
		return fmt.Errorf("tuple %d: dimensionality %d, want %d", t.ID, len(t.Point), d)
	}
	if !(t.Prob > 0 && t.Prob <= 1) {
		return fmt.Errorf("tuple %d: probability %v outside (0,1]", t.ID, t.Prob)
	}
	for j, v := range t.Point {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("tuple %d: coordinate %d is %v", t.ID, j, v)
		}
	}
	return nil
}

// Clone returns a deep copy of t.
func (t Tuple) Clone() Tuple {
	return Tuple{ID: t.ID, Point: t.Point.Clone(), Prob: t.Prob}
}

// Dominates reports whether t dominates other in the subspace dims
// (nil = full space). Ties on every compared dimension are not domination.
func (t Tuple) Dominates(other Tuple, dims []int) bool {
	return t.Point.DominatesIn(other.Point, dims)
}

// String renders the tuple in the paper's quaternion-ish style.
func (t Tuple) String() string {
	return fmt.Sprintf("<id=%d %s p=%.3g>", t.ID, t.Point, t.Prob)
}

// DB is an uncertain database: an unordered collection of tuples.
type DB []Tuple

// ErrDuplicateID reports that a DB contains two tuples with the same ID.
var ErrDuplicateID = errors.New("uncertain: duplicate tuple id")

// Validate checks every tuple and ID uniqueness. d <= 0 means "infer the
// dimensionality from the first tuple".
func (db DB) Validate(d int) error {
	if len(db) == 0 {
		return nil
	}
	if d <= 0 {
		d = len(db[0].Point)
	}
	seen := make(map[TupleID]bool, len(db))
	for _, t := range db {
		if err := t.Validate(d); err != nil {
			return err
		}
		if seen[t.ID] {
			return fmt.Errorf("%w: %d", ErrDuplicateID, t.ID)
		}
		seen[t.ID] = true
	}
	return nil
}

// Dims returns the dimensionality of the database (0 when empty).
func (db DB) Dims() int {
	if len(db) == 0 {
		return 0
	}
	return len(db[0].Point)
}

// Clone returns a deep copy of db.
func (db DB) Clone() DB {
	out := make(DB, len(db))
	for i, t := range db {
		out[i] = t.Clone()
	}
	return out
}

// SkyProb computes eq. 3: the skyline probability of t with respect to db,
//
//	P_sky(t, db) = P(t) × Π_{t' ∈ db, t' ≺ t} (1 − P(t'))
//
// in the subspace dims (nil = full space). Any tuple in db sharing t's ID is
// skipped, so the function works both for members of db and for foreign
// tuples carrying their own existential probability.
func (db DB) SkyProb(t Tuple, dims []int) float64 {
	return t.Prob * db.CrossSkyProb(t, dims)
}

// CrossSkyProb computes eq. 9 (Observation 1): the factor contributed by db
// to the skyline probability of a tuple t that lives elsewhere,
//
//	P_sky(t, D_x) = Π_{t' ∈ D_x, t' ≺ t} (1 − P(t'))
//
// i.e. the probability that no tuple of db dominates-and-exists. The
// existential probability of t itself is not included.
func (db DB) CrossSkyProb(t Tuple, dims []int) float64 {
	prob := 1.0
	for _, other := range db {
		if other.ID == t.ID {
			continue
		}
		if other.Dominates(t, dims) {
			prob *= 1 - other.Prob
		}
	}
	return prob
}

// SkylineMember is one entry of a probabilistic skyline answer.
type SkylineMember struct {
	Tuple Tuple
	// Prob is the (global) skyline probability of Tuple with respect to
	// the database(s) the answer was computed over.
	Prob float64
}

// Skyline computes the probabilistic skyline of db by brute force: every
// tuple whose skyline probability (eq. 3) is at least q, sorted by
// descending probability with ID as the tiebreak. It is O(N²) and intended
// as the reference oracle and for modest inputs.
func (db DB) Skyline(q float64, dims []int) []SkylineMember {
	var out []SkylineMember
	for _, t := range db {
		if p := db.SkyProb(t, dims); p >= q {
			out = append(out, SkylineMember{Tuple: t.Clone(), Prob: p})
		}
	}
	SortMembers(out)
	return out
}

// GlobalSkyProb computes eq. 4: the global skyline probability of t over a
// horizontal partitioning, as the product of per-partition factors
// (Lemma 1). t must belong to exactly one partition; its own partition
// contributes eq. 3 (with P(t)) and every other partition contributes eq. 9.
func GlobalSkyProb(t Tuple, parts []DB, dims []int) float64 {
	prob := t.Prob
	for _, part := range parts {
		prob *= part.CrossSkyProb(t, dims)
	}
	return prob
}

// Union flattens a horizontal partitioning back into one database.
func Union(parts []DB) DB {
	var n int
	for _, p := range parts {
		n += len(p)
	}
	out := make(DB, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// SortMembers orders skyline members by descending probability, breaking
// ties by ascending tuple ID so answers are deterministic.
func SortMembers(members []SkylineMember) {
	sort.Slice(members, func(i, j int) bool {
		if members[i].Prob != members[j].Prob {
			return members[i].Prob > members[j].Prob
		}
		return members[i].Tuple.ID < members[j].Tuple.ID
	})
}

// MembersEqual reports whether two skyline answers contain the same tuples
// with the same probabilities, up to tol, ignoring order.
func MembersEqual(a, b []SkylineMember, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	am := make(map[TupleID]float64, len(a))
	for _, m := range a {
		am[m.Tuple.ID] = m.Prob
	}
	for _, m := range b {
		p, ok := am[m.Tuple.ID]
		if !ok || math.Abs(p-m.Prob) > tol {
			return false
		}
	}
	return true
}
