package uncertain

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// dbFromBytes deterministically decodes a small uncertain database from a
// byte string, for testing/quick generators: 3 bytes per tuple (x, y,
// prob bucket).
func dbFromBytes(raw []byte) DB {
	var db DB
	for i := 0; i+2 < len(raw) && len(db) < 12; i += 3 {
		db = append(db, Tuple{
			ID:    TupleID(len(db) + 1),
			Point: geom.Point{float64(raw[i] % 8), float64(raw[i+1] % 8)},
			Prob:  0.1 + 0.8*float64(raw[i+2]%10)/10,
		})
	}
	return db
}

// P_sky is a probability: it lies in [0, P(t)] for every tuple.
func TestQuickSkyProbBounded(t *testing.T) {
	f := func(raw []byte) bool {
		db := dbFromBytes(raw)
		for _, tu := range db {
			p := db.SkyProb(tu, nil)
			if p < 0 || p > tu.Prob+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Adding any tuple to the database can only lower (or keep) every other
// tuple's skyline probability — eq. 3 is antitone in the dominator set.
func TestQuickSkyProbAntitone(t *testing.T) {
	f := func(raw []byte, x, y, pb uint8) bool {
		db := dbFromBytes(raw)
		if len(db) == 0 {
			return true
		}
		extra := Tuple{
			ID:    9999,
			Point: geom.Point{float64(x % 8), float64(y % 8)},
			Prob:  0.1 + 0.8*float64(pb%10)/10,
		}
		bigger := append(db.Clone(), extra)
		for _, tu := range db {
			before := db.SkyProb(tu, nil)
			after := bigger.SkyProb(tu, nil)
			if after > before+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Splitting a database into partitions never changes global skyline
// probabilities (Lemma 1), regardless of the split.
func TestQuickPartitionInvariance(t *testing.T) {
	f := func(raw []byte, splitMask uint16) bool {
		db := dbFromBytes(raw)
		var a, b DB
		for i, tu := range db {
			if splitMask&(1<<(i%16)) != 0 {
				a = append(a, tu)
			} else {
				b = append(b, tu)
			}
		}
		for _, tu := range db {
			got := GlobalSkyProb(tu, []DB{a, b}, nil)
			want := db.SkyProb(tu, nil)
			if math.Abs(got-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Scaling one tuple's probability down never shrinks anyone else's
// skyline probability.
func TestQuickDominatorWeakeningMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for trial := 0; trial < 500; trial++ {
		db := dbFromBytes(randBytes(r, 30))
		if len(db) < 2 {
			continue
		}
		k := r.Intn(len(db))
		weaker := db.Clone()
		weaker[k].Prob *= 0.5
		for i, tu := range db {
			if i == k {
				continue
			}
			before := db.SkyProb(tu, nil)
			after := weaker.SkyProb(tu, nil)
			if after < before-1e-12 {
				t.Fatalf("weakening tuple %d lowered tuple %d's probability (%v -> %v)",
					k, i, before, after)
			}
		}
	}
}

func randBytes(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

// The sum of P(W) over all possible worlds is 1 for arbitrary databases.
func TestQuickWorldsSumToOne(t *testing.T) {
	f := func(raw []byte) bool {
		db := dbFromBytes(raw)
		if len(db) > 10 {
			db = db[:10]
		}
		worlds, err := EnumerateWorlds(db)
		if err != nil {
			return false
		}
		var total float64
		for _, w := range worlds {
			total += w.Prob
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
