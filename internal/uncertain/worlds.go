package uncertain

import (
	"fmt"

	"repro/internal/geom"
)

// MaxWorldTuples bounds possible-world enumeration: 2^N worlds are
// materialised, so N must stay small. The limit keeps accidental misuse from
// consuming the machine; the enumeration exists only as a semantic oracle.
const MaxWorldTuples = 20

// World is one possible world: the subset of tuples that exist, together
// with its instantiation probability (eq. 1).
type World struct {
	Tuples []Tuple
	Prob   float64
}

// EnumerateWorlds materialises all 2^N possible worlds of db with their
// probabilities (eq. 1). It returns an error when db exceeds
// MaxWorldTuples.
func EnumerateWorlds(db DB) ([]World, error) {
	n := len(db)
	if n > MaxWorldTuples {
		return nil, fmt.Errorf("uncertain: %d tuples exceed the %d-tuple world-enumeration limit", n, MaxWorldTuples)
	}
	worlds := make([]World, 0, 1<<n)
	for mask := 0; mask < 1<<n; mask++ {
		w := World{Prob: 1}
		for i, t := range db {
			if mask&(1<<i) != 0 {
				w.Tuples = append(w.Tuples, t)
				w.Prob *= t.Prob
			} else {
				w.Prob *= 1 - t.Prob
			}
		}
		worlds = append(worlds, w)
	}
	return worlds, nil
}

// WorldSkyline returns the conventional (certain-data) skyline of the
// tuples present in w, in the subspace dims.
func WorldSkyline(w World, dims []int) []Tuple {
	var sky []Tuple
	for _, t := range w.Tuples {
		dominated := false
		for _, s := range w.Tuples {
			if s.ID != t.ID && s.Dominates(t, dims) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, t)
		}
	}
	return sky
}

// SkyProbByWorlds computes eq. 2 directly: the sum of the probabilities of
// every possible world whose skyline contains t. It is exponential in |db|
// and exists to validate the closed form of eq. 3.
func SkyProbByWorlds(db DB, id TupleID, dims []int) (float64, error) {
	worlds, err := EnumerateWorlds(db)
	if err != nil {
		return 0, err
	}
	var p float64
	for _, w := range worlds {
		for _, t := range WorldSkyline(w, dims) {
			if t.ID == id {
				p += w.Prob
				break
			}
		}
	}
	return p, nil
}

// CertainSkyline returns the conventional skyline of a set of points:
// those not dominated by any other point. It serves tests and the certain
// special case (all probabilities 1).
func CertainSkyline(points []geom.Point, dims []int) []geom.Point {
	var sky []geom.Point
	for i, p := range points {
		dominated := false
		for j, s := range points {
			if i != j && s.DominatesIn(p, dims) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, p)
		}
	}
	return sky
}
