package uncertain

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// fig3DB is the worked example of the paper's Fig. 2/3.
func fig3DB() DB {
	return DB{
		{ID: 1, Point: geom.Point{80, 96}, Prob: 0.8},
		{ID: 2, Point: geom.Point{85, 90}, Prob: 0.6},
		{ID: 3, Point: geom.Point{75, 95}, Prob: 0.8},
	}
}

func TestSkyProbMatchesPaperExample(t *testing.T) {
	db := fig3DB()
	want := map[TupleID]float64{1: 0.16, 2: 0.6, 3: 0.8}
	for _, tu := range db {
		got := db.SkyProb(tu, nil)
		if math.Abs(got-want[tu.ID]) > 1e-12 {
			t.Errorf("SkyProb(t%d) = %v, want %v", tu.ID, got, want[tu.ID])
		}
	}
}

func TestWorldEnumerationMatchesPaperExample(t *testing.T) {
	db := fig3DB()
	worlds, err := EnumerateWorlds(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(worlds) != 8 {
		t.Fatalf("got %d worlds, want 8", len(worlds))
	}
	var total float64
	for _, w := range worlds {
		total += w.Prob
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("world probabilities sum to %v, want 1", total)
	}
	// Spot-check the two worlds tabulated in Fig. 3.
	probOf := func(ids ...TupleID) float64 {
		for _, w := range worlds {
			if len(w.Tuples) != len(ids) {
				continue
			}
			match := true
			for i, tu := range w.Tuples {
				if tu.ID != ids[i] {
					match = false
					break
				}
			}
			if match {
				return w.Prob
			}
		}
		t.Fatalf("world %v not found", ids)
		return 0
	}
	if got := probOf(); math.Abs(got-0.016) > 1e-12 {
		t.Errorf("P(empty world) = %v, want 0.016", got)
	}
	if got := probOf(1, 2, 3); math.Abs(got-0.384) > 1e-12 {
		t.Errorf("P(full world) = %v, want 0.384", got)
	}
}

// Equation 2 (possible worlds) and equation 3 (closed form) must agree.
func TestClosedFormMatchesPossibleWorlds(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(9)
		d := 1 + r.Intn(3)
		db := randomDB(r, n, d)
		var dims []int
		if d > 1 && r.Intn(2) == 0 {
			dims = []int{r.Intn(d)}
		}
		for _, tu := range db {
			want, err := SkyProbByWorlds(db, tu.ID, dims)
			if err != nil {
				t.Fatal(err)
			}
			got := db.SkyProb(tu, dims)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d dims %v: closed form %v != worlds %v for %v\ndb=%v",
					trial, dims, got, want, tu, db)
			}
		}
	}
}

func randomDB(r *rand.Rand, n, d int) DB {
	db := make(DB, n)
	for i := range db {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = float64(r.Intn(6))
		}
		db[i] = Tuple{ID: TupleID(i + 1), Point: p, Prob: 0.05 + 0.95*r.Float64()}
	}
	return db
}

func TestEnumerateWorldsLimit(t *testing.T) {
	db := make(DB, MaxWorldTuples+1)
	for i := range db {
		db[i] = Tuple{ID: TupleID(i + 1), Point: geom.Point{float64(i)}, Prob: 0.5}
	}
	if _, err := EnumerateWorlds(db); err == nil {
		t.Fatal("expected error beyond MaxWorldTuples")
	}
	if _, err := SkyProbByWorlds(db, 1, nil); err == nil {
		t.Fatal("expected error from SkyProbByWorlds beyond limit")
	}
}

func TestValidate(t *testing.T) {
	valid := Tuple{ID: 1, Point: geom.Point{1, 2}, Prob: 0.5}
	if err := valid.Validate(2); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	cases := []Tuple{
		{ID: 2, Point: nil, Prob: 0.5},
		{ID: 3, Point: geom.Point{1}, Prob: 0.5},     // wrong d
		{ID: 4, Point: geom.Point{1, 2}, Prob: 0},    // zero prob
		{ID: 5, Point: geom.Point{1, 2}, Prob: 1.5},  // prob > 1
		{ID: 6, Point: geom.Point{1, 2}, Prob: -0.1}, // negative
		{ID: 7, Point: geom.Point{math.NaN(), 2}, Prob: 1},

		{ID: 8, Point: geom.Point{math.Inf(1), 2}, Prob: 1},
	}
	for _, tu := range cases {
		if err := tu.Validate(2); err == nil {
			t.Errorf("tuple %v should be invalid", tu)
		}
	}
	if err := (Tuple{ID: 9, Point: geom.Point{1, 2, 3}, Prob: 1}).Validate(0); err != nil {
		t.Errorf("d<=0 must skip dimensionality check: %v", err)
	}
}

func TestDBValidate(t *testing.T) {
	db := fig3DB()
	if err := db.Validate(0); err != nil {
		t.Errorf("valid db rejected: %v", err)
	}
	if err := (DB{}).Validate(0); err != nil {
		t.Errorf("empty db rejected: %v", err)
	}
	dup := append(fig3DB(), Tuple{ID: 1, Point: geom.Point{1, 1}, Prob: 0.5})
	if err := dup.Validate(0); err == nil {
		t.Error("duplicate IDs must be rejected")
	}
	mixed := DB{
		{ID: 1, Point: geom.Point{1, 2}, Prob: 0.5},
		{ID: 2, Point: geom.Point{1}, Prob: 0.5},
	}
	if err := mixed.Validate(0); err == nil {
		t.Error("mixed dimensionality must be rejected")
	}
}

func TestCrossSkyProbExcludesOwnProbability(t *testing.T) {
	db := fig3DB()
	foreign := Tuple{ID: 99, Point: geom.Point{90, 97}, Prob: 0.4}
	// Dominators of (90,97) within db: t1 (80,96), t2 (85,90), t3 (75,95).
	want := (1 - 0.8) * (1 - 0.6) * (1 - 0.8)
	if got := db.CrossSkyProb(foreign, nil); math.Abs(got-want) > 1e-12 {
		t.Errorf("CrossSkyProb = %v, want %v", got, want)
	}
	// A tuple present in db must not be penalised by itself.
	self := db[2] // t3, undominated
	if got := db.CrossSkyProb(self, nil); got != 1 {
		t.Errorf("CrossSkyProb(self) = %v, want 1", got)
	}
}

func TestGlobalSkyProbEqualsUnionSkyProb(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		m := 1 + r.Intn(4)
		d := 1 + r.Intn(3)
		parts := make([]DB, m)
		id := TupleID(1)
		for i := range parts {
			n := r.Intn(6)
			for k := 0; k < n; k++ {
				p := make(geom.Point, d)
				for j := range p {
					p[j] = float64(r.Intn(6))
				}
				parts[i] = append(parts[i], Tuple{ID: id, Point: p, Prob: 0.05 + 0.95*r.Float64()})
				id++
			}
		}
		union := Union(parts)
		for _, tu := range union {
			got := GlobalSkyProb(tu, parts, nil)
			want := union.SkyProb(tu, nil)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: Lemma 1 broken for %v: distributed %v != centralized %v",
					trial, tu, got, want)
			}
		}
	}
}

func TestSkylineThresholdMonotonicity(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	db := randomDB(r, 40, 3)
	prev := db.Skyline(0.1, nil)
	for _, q := range []float64{0.3, 0.5, 0.7, 0.9} {
		cur := db.Skyline(q, nil)
		curIDs := make(map[TupleID]bool)
		for _, m := range cur {
			curIDs[m.Tuple.ID] = true
			if m.Prob < q {
				t.Fatalf("q=%v: member below threshold: %v", q, m)
			}
		}
		prevIDs := make(map[TupleID]bool)
		for _, m := range prev {
			prevIDs[m.Tuple.ID] = true
		}
		for id := range curIDs {
			if !prevIDs[id] {
				t.Fatalf("q=%v skyline not a subset of smaller-q skyline (id %d)", q, id)
			}
		}
		prev = cur
	}
}

func TestSkylineSortedDeterministically(t *testing.T) {
	db := fig3DB()
	sky := db.Skyline(0.1, nil)
	if len(sky) != 3 {
		t.Fatalf("got %d members, want 3", len(sky))
	}
	for i := 1; i < len(sky); i++ {
		if sky[i].Prob > sky[i-1].Prob {
			t.Fatal("members must be sorted by descending probability")
		}
	}
	if sky[0].Tuple.ID != 3 || sky[1].Tuple.ID != 2 || sky[2].Tuple.ID != 1 {
		t.Errorf("unexpected order: %v", sky)
	}
}

func TestMembersEqual(t *testing.T) {
	a := []SkylineMember{{Tuple: Tuple{ID: 1}, Prob: 0.5}, {Tuple: Tuple{ID: 2}, Prob: 0.7}}
	b := []SkylineMember{{Tuple: Tuple{ID: 2}, Prob: 0.7}, {Tuple: Tuple{ID: 1}, Prob: 0.5}}
	if !MembersEqual(a, b, 1e-12) {
		t.Error("order must not matter")
	}
	c := []SkylineMember{{Tuple: Tuple{ID: 1}, Prob: 0.5}}
	if MembersEqual(a, c, 1e-12) {
		t.Error("different lengths must differ")
	}
	d := []SkylineMember{{Tuple: Tuple{ID: 1}, Prob: 0.5}, {Tuple: Tuple{ID: 3}, Prob: 0.7}}
	if MembersEqual(a, d, 1e-12) {
		t.Error("different IDs must differ")
	}
	e := []SkylineMember{{Tuple: Tuple{ID: 1}, Prob: 0.6}, {Tuple: Tuple{ID: 2}, Prob: 0.7}}
	if MembersEqual(a, e, 1e-12) {
		t.Error("different probabilities must differ")
	}
	if !MembersEqual(a, e, 0.2) {
		t.Error("tolerance must absorb small differences")
	}
}

func TestCertainSkyline(t *testing.T) {
	// The hotel example of Fig. 1: P1, P3, P5 are the skyline.
	pts := []geom.Point{
		{1, 9}, // P1
		{4, 7}, // dominated by P3
		{3, 5}, // P3
		{6, 4}, // dominated by P5
		{5, 2}, // P5
		{8, 6}, // dominated
	}
	sky := CertainSkyline(pts, nil)
	want := map[string]bool{"(1, 9)": true, "(3, 5)": true, "(5, 2)": true}
	if len(sky) != len(want) {
		t.Fatalf("skyline size %d, want %d: %v", len(sky), len(want), sky)
	}
	for _, p := range sky {
		if !want[p.String()] {
			t.Errorf("unexpected skyline point %v", p)
		}
	}
}

func TestCertainSkylineAsProbabilityOneSpecialCase(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(20)
		d := 1 + r.Intn(3)
		db := make(DB, n)
		pts := make([]geom.Point, n)
		for i := range db {
			p := make(geom.Point, d)
			for j := range p {
				p[j] = float64(r.Intn(10))
			}
			db[i] = Tuple{ID: TupleID(i + 1), Point: p, Prob: 1}
			pts[i] = p
		}
		// With all probabilities 1, the q=1 probabilistic skyline must have
		// the same size as the certain skyline over distinct point multisets.
		sky := db.Skyline(1, nil)
		want := CertainSkyline(pts, nil)
		if len(sky) != len(want) {
			t.Fatalf("trial %d: probabilistic q=1 size %d != certain size %d", trial, len(sky), len(want))
		}
	}
}

func TestUnionAndClone(t *testing.T) {
	parts := []DB{fig3DB(), {{ID: 9, Point: geom.Point{1, 1}, Prob: 0.2}}}
	u := Union(parts)
	if len(u) != 4 {
		t.Fatalf("union size %d, want 4", len(u))
	}
	c := u.Clone()
	c[0].Point[0] = 12345
	if u[0].Point[0] == 12345 {
		t.Error("Clone must deep-copy points")
	}
	if got := (DB{}).Dims(); got != 0 {
		t.Errorf("empty Dims = %d", got)
	}
	if got := u.Dims(); got != 2 {
		t.Errorf("Dims = %d, want 2", got)
	}
}
