// Package dataset persists uncertain databases to disk so the CLI tools
// can hand partitions between dsud-gen, dsud-site and dsud-query. New
// files use the compact checksummed binary format of internal/codec;
// loading also accepts the legacy gob format (v1) transparently.
package dataset

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"

	"repro/internal/codec"
	"repro/internal/uncertain"
)

// fileFormat is the on-disk representation.
type fileFormat struct {
	// Magic guards against loading unrelated gob files.
	Magic string
	// Dims is the data dimensionality.
	Dims int
	// Tuples is the partition body.
	Tuples uncertain.DB
}

const magic = "dsud-dataset-v1"

// Save writes db (dimensionality dims) to path, creating or truncating
// it, in the binary codec format.
func Save(path string, dims int, db uncertain.DB) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := codec.EncodeDB(f, dims, db); err != nil {
		f.Close()
		return fmt.Errorf("dataset: encode %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("dataset: close %s: %w", path, err)
	}
	return nil
}

// SaveGob writes the legacy gob format (v1), kept for compatibility
// tests and older tooling.
func SaveGob(path string, dims int, db uncertain.DB) error {
	if err := db.Validate(dims); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	enc := gob.NewEncoder(f)
	if err := enc.Encode(fileFormat{Magic: magic, Dims: dims, Tuples: db}); err != nil {
		f.Close()
		return fmt.Errorf("dataset: encode %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("dataset: close %s: %w", path, err)
	}
	return nil
}

// Load reads a partition saved by Save (binary) or SaveGob (legacy),
// sniffing the format from the file header.
func Load(path string) (uncertain.DB, int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("dataset: %w", err)
	}
	if bytes.HasPrefix(raw, []byte("DSQB")) {
		db, dims, err := codec.DecodeDB(bytes.NewReader(raw))
		if err != nil {
			return nil, 0, fmt.Errorf("dataset: %s: %w", path, err)
		}
		return db, dims, nil
	}
	var ff fileFormat
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&ff); err != nil {
		return nil, 0, fmt.Errorf("dataset: decode %s: %w", path, err)
	}
	if ff.Magic != magic {
		return nil, 0, fmt.Errorf("dataset: %s is not a dsud dataset", path)
	}
	if err := ff.Tuples.Validate(ff.Dims); err != nil {
		return nil, 0, fmt.Errorf("dataset: %s: %w", path, err)
	}
	return ff.Tuples, ff.Dims, nil
}
