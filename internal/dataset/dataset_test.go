package dataset

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geom"
	"repro/internal/uncertain"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "part0.dsud")
	db := uncertain.DB{
		{ID: 1, Point: geom.Point{1, 2}, Prob: 0.5},
		{ID: 2, Point: geom.Point{3, 4}, Prob: 0.9},
	}
	if err := Save(path, 2, db); err != nil {
		t.Fatal(err)
	}
	got, dims, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if dims != 2 || len(got) != 2 {
		t.Fatalf("dims=%d len=%d", dims, len(got))
	}
	for i := range db {
		if got[i].ID != db[i].ID || !got[i].Point.Equal(db[i].Point) || got[i].Prob != db[i].Prob {
			t.Fatalf("tuple %d mangled: %v vs %v", i, got[i], db[i])
		}
	}
}

func TestSaveRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.dsud")
	bad := uncertain.DB{{ID: 1, Point: geom.Point{1}, Prob: 2}}
	if err := Save(path, 1, bad); err == nil {
		t.Fatal("invalid db must be rejected")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file must fail")
	}
	junk := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(junk, []byte("not a gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(junk); err == nil {
		t.Fatal("junk file must fail")
	}
}

func TestEmptyDB(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.dsud")
	if err := Save(path, 3, uncertain.DB{}); err != nil {
		t.Fatal(err)
	}
	got, dims, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || dims != 3 {
		t.Fatalf("got %d tuples dims %d", len(got), dims)
	}
}

func TestLegacyGobFormatStillLoads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.dsud")
	db := uncertain.DB{
		{ID: 1, Point: geom.Point{1, 2}, Prob: 0.5},
		{ID: 2, Point: geom.Point{3, 4}, Prob: 0.9},
	}
	if err := SaveGob(path, 2, db); err != nil {
		t.Fatal(err)
	}
	got, dims, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if dims != 2 || len(got) != 2 || got[0].ID != 1 {
		t.Fatalf("legacy load mangled: dims=%d %v", dims, got)
	}
}

func TestSaveGobRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.dsud")
	bad := uncertain.DB{{ID: 1, Point: geom.Point{1}, Prob: 2}}
	if err := SaveGob(path, 1, bad); err == nil {
		t.Fatal("invalid db must be rejected")
	}
}
