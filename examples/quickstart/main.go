// Quickstart: the smallest end-to-end use of the dsq API.
//
// Three sites each hold a handful of uncertain 2-d tuples (price,
// distance; lower is better, each record exists with some probability).
// We ask for every tuple whose global skyline probability is at least 0.3
// and print the answer as it streams in.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/dsq"
)

func main() {
	// One partition per site. IDs must be unique across all sites.
	parts := []dsq.DB{
		{
			{ID: 1, Point: dsq.Point{6.0, 6.0}, Prob: 0.7},
			{ID: 2, Point: dsq.Point{8.0, 4.0}, Prob: 0.8},
			{ID: 3, Point: dsq.Point{3.0, 8.0}, Prob: 0.8},
		},
		{
			{ID: 4, Point: dsq.Point{6.5, 7.0}, Prob: 0.8},
			{ID: 5, Point: dsq.Point{4.0, 9.0}, Prob: 0.6},
			{ID: 6, Point: dsq.Point{9.0, 5.0}, Prob: 0.7},
		},
		{
			{ID: 7, Point: dsq.Point{6.4, 7.5}, Prob: 0.9},
			{ID: 8, Point: dsq.Point{3.5, 11.0}, Prob: 0.7},
			{ID: 9, Point: dsq.Point{10.0, 4.5}, Prob: 0.7},
		},
	}

	cluster, err := dsq.Connect(dsq.ClusterConfig{Partitions: parts, Dims: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fmt.Println("progressive results:")
	report, err := cluster.Query(context.Background(), dsq.Options{
		Threshold: 0.3,
		OnResult: func(res dsq.Result) {
			fmt.Printf("  found %s with P(skyline) = %.3f (site %d)\n",
				res.Tuple.Point, res.GlobalProb, res.Site)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nfinal answer (%d tuples):\n", len(report.Skyline))
	for _, m := range report.Skyline {
		fmt.Printf("  %s  P=%.3f\n", m.Tuple.Point, m.Prob)
	}
	fmt.Printf("\ncost: %d tuples over the network in %d messages (baseline would ship all %d)\n",
		report.Bandwidth.Tuples(), report.Bandwidth.Messages, 9)
}
