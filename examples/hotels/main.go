// Hotels: the paper's motivating scenario (§5.3) at realistic scale.
//
// A hotel-booking system spans three cities — Qingdao, Shanghai and Xiamen
// — each holding thousands of hotel records with two minimised attributes
// (room price, distance to the beach) and a confidence probability (the
// listing may be stale). A customer asks for every hotel whose global
// skyline probability reaches q = 0.3 across all three cities.
//
// The example contrasts all three algorithms on the same data so the
// bandwidth story of the paper is visible directly.
//
// Run with:
//
//	go run ./examples/hotels
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/dsq"
)

const hotelsPerCity = 4000

func main() {
	cities := []string{"Qingdao", "Shanghai", "Xiamen"}
	parts := make([]dsq.DB, len(cities))
	r := rand.New(rand.NewSource(2010)) // the paper's year, for luck
	id := dsq.TupleID(1)
	for i := range cities {
		parts[i] = make(dsq.DB, 0, hotelsPerCity)
		for k := 0; k < hotelsPerCity; k++ {
			// Price clusters by distance band: beachfront rooms cost more,
			// so the two attributes are mildly anticorrelated — exactly
			// the regime where skyline queries earn their keep.
			distance := 50 + 4950*r.Float64()        // metres to the beach
			base := 900 - 0.12*distance              // closer = pricier
			price := base*(0.7+0.6*r.Float64()) + 80 // spread
			confidence := 0.3 + 0.7*r.Float64()      // listing freshness
			parts[i] = append(parts[i], dsq.Tuple{
				ID:    id,
				Point: dsq.Point{price, distance},
				Prob:  confidence,
			})
			id++
		}
	}

	cluster, err := dsq.Connect(dsq.ClusterConfig{Partitions: parts, Dims: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	fmt.Printf("searching %d hotels across %v for skyline probability >= 0.3\n\n",
		3*hotelsPerCity, cities)

	var reports []*dsq.Report
	for _, algo := range []dsq.Algorithm{dsq.Baseline, dsq.DSUD, dsq.EDSUD} {
		report, err := cluster.Query(ctx, dsq.Options{Threshold: 0.3, Algorithm: algo})
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, report)
		fmt.Printf("%-9v %4d skyline hotels, %7d tuples transmitted, %8v\n",
			algo, len(report.Skyline), report.Bandwidth.Tuples(), report.Elapsed.Round(1e5))
	}

	best := reports[2].Skyline
	fmt.Printf("\ntop recommendations (by skyline probability):\n")
	for i, m := range best {
		if i == 8 {
			fmt.Printf("  ... and %d more\n", len(best)-8)
			break
		}
		city := cities[reports[2].Sites[m.Tuple.ID]]
		fmt.Printf("  %-9s price %6.0f  beach %5.0fm  P(best deal) = %.3f\n",
			city, m.Tuple.Point[0], m.Tuple.Point[1], m.Prob)
	}

	saved := 1 - float64(reports[2].Bandwidth.Tuples())/float64(reports[0].Bandwidth.Tuples())
	fmt.Printf("\ne-DSUD moved %.1f%% less data than shipping every record to the coordinator\n", 100*saved)
}
