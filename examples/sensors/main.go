// Sensors: a continuous probabilistic skyline over a sliding window —
// the streaming companion to the distributed engine, matching the
// paper's sensor-network motivation (§1) and the §2.2 streaming setting.
//
// An environmental monitor receives readings (pollutant level, power
// draw) from wireless sensors; transmission glitches give each reading a
// confidence probability, and only the most recent 5,000 readings are
// relevant. The operator keeps the threshold skyline current after every
// arrival with a minimal candidate set.
//
// Run with:
//
//	go run ./examples/sensors
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/dsq"
)

func main() {
	const (
		windowSize = 5_000
		streamLen  = 50_000
		threshold  = 0.3
	)

	window, err := dsq.NewSlidingWindow(windowSize, threshold, nil)
	if err != nil {
		log.Fatal(err)
	}

	r := rand.New(rand.NewSource(99))
	var answerSizes []int
	for step := 1; step <= streamLen; step++ {
		// Readings drift through the day: pollution climbs, power falls.
		phase := float64(step) / streamLen
		reading := dsq.Tuple{
			ID: dsq.TupleID(step),
			Point: dsq.Point{
				0.2 + 0.6*phase + 0.2*r.Float64(), // pollutant
				0.9 - 0.7*phase + 0.1*r.Float64(), // power draw
			},
			Prob: 0.4 + 0.6*r.Float64(), // link quality
		}
		if _, err := window.Append(reading); err != nil {
			log.Fatal(err)
		}
		if step%10_000 == 0 {
			sky := window.Skyline()
			answerSizes = append(answerSizes, len(sky))
			fmt.Printf("after %6d readings: %2d skyline sensors, %4d candidates tracked (of %d live), %6d permanently dropped\n",
				step, len(sky), window.Candidates(), window.Len(), window.Drops())
		}
	}

	final := window.Skyline()
	fmt.Printf("\ncurrent best readings:\n")
	for i, m := range final {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(final)-5)
			break
		}
		fmt.Printf("  reading %-6d pollutant %.3f  power %.3f  P = %.3f\n",
			m.Tuple.ID, m.Tuple.Point[0], m.Tuple.Point[1], m.Prob)
	}
	fmt.Printf("\nthe candidate set stayed at ~%d entries for a %d-tuple window — the\n",
		window.Candidates(), windowSize)
	fmt.Println("state a naive recompute-per-arrival operator would scan on every tick.")
}
