// Stockmarket: distributed "top deal" discovery over uncertain trades,
// the paper's introduction scenario on the NYSE-like synthetic workload.
//
// Each of several stock-exchange centres records trades as (average price
// per share, traded volume); recording errors give every trade an
// existential probability. A deal dominates another when it is cheaper
// AND larger. The query streams the globally best deals progressively —
// the property the paper's Fig. 13 measures — and this example prints the
// progressiveness trace alongside the answer.
//
// Run with:
//
//	go run ./examples/stockmarket
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/dsq"
)

func main() {
	const (
		trades    = 120_000
		exchanges = 8
		threshold = 0.3
	)

	// The NYSE generator emits (price, volumeComplement); both minimised,
	// so low price and high volume win — the "good deal" order.
	db, err := dsq.GenerateWorkload(dsq.WorkloadConfig{
		N:      trades,
		Values: dsq.NYSE,
		Probs:  dsq.GaussianProb,
		Mu:     0.6, Sigma: 0.2,
		Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := dsq.PartitionWorkload(db, exchanges, 43)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := dsq.Connect(dsq.ClusterConfig{Partitions: parts, Dims: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fmt.Printf("%d trades across %d exchanges; streaming deals with P(top) >= %.1f\n\n",
		trades, exchanges, threshold)

	first := true
	report, _, err := cluster.QueryWithStats(context.Background(), dsq.Options{
		Threshold: threshold,
		Algorithm: dsq.EDSUD,
		OnResult: func(res dsq.Result) {
			if first {
				fmt.Println("deals as they are confirmed:")
				first = false
			}
			price := res.Tuple.Point[0]
			volume := 1<<20 - res.Tuple.Point[1] // invert the complement
			fmt.Printf("  deal #%-2d exchange %d: %8.0f shares at %6.2f  (P = %.3f)\n",
				res.Index, res.Site, volume, price, res.GlobalProb)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Every report carries the query's delivery-curve digest — the same
	// record /queryz retains and dsud-query -explain renders. Its
	// checkpoints are the paper's Fig. 13 progressiveness measure: how
	// much network cost each confirmed deal required.
	curve := report.Curve
	fmt.Printf("\ndelivery curve (cumulative network cost per confirmed deal):\n")
	for _, p := range curve.Checkpoints() {
		fmt.Printf("  after %2d deal(s): %5d tuples moved, %8v elapsed\n",
			p.K, p.Tuples, time.Duration(p.NS).Round(1e4))
	}
	fmt.Printf("\nprogress: auc(bandwidth) %.3f, auc(time) %.3f, first deal after %v\n",
		curve.AUCBandwidth, curve.AUCTime, time.Duration(curve.TTFirstNS).Round(1e4))
	fmt.Printf("total: %d deals, %d tuples transmitted (of %d stored), %v\n",
		len(report.Skyline), report.Bandwidth.Tuples(), trades, report.Elapsed.Round(1e6))
}
