// Stockmarket: distributed "top deal" discovery over uncertain trades,
// the paper's introduction scenario on the NYSE-like synthetic workload.
//
// Each of several stock-exchange centres records trades as (average price
// per share, traded volume); recording errors give every trade an
// existential probability. A deal dominates another when it is cheaper
// AND larger. The query streams the globally best deals progressively —
// the property the paper's Fig. 13 measures — and this example prints the
// progressiveness trace alongside the answer.
//
// Run with:
//
//	go run ./examples/stockmarket
package main

import (
	"context"
	"fmt"
	"log"

	"repro/dsq"
)

func main() {
	const (
		trades    = 120_000
		exchanges = 8
		threshold = 0.3
	)

	// The NYSE generator emits (price, volumeComplement); both minimised,
	// so low price and high volume win — the "good deal" order.
	db, err := dsq.GenerateWorkload(dsq.WorkloadConfig{
		N:      trades,
		Values: dsq.NYSE,
		Probs:  dsq.GaussianProb,
		Mu:     0.6, Sigma: 0.2,
		Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := dsq.PartitionWorkload(db, exchanges, 43)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := dsq.NewLocalCluster(parts, 2)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fmt.Printf("%d trades across %d exchanges; streaming deals with P(top) >= %.1f\n\n",
		trades, exchanges, threshold)

	first := true
	report, err := dsq.Query(context.Background(), cluster, dsq.Options{
		Threshold: threshold,
		Algorithm: dsq.EDSUD,
		OnResult: func(res dsq.Result) {
			if first {
				fmt.Println("deals as they are confirmed:")
				first = false
			}
			price := res.Tuple.Point[0]
			volume := 1<<20 - res.Tuple.Point[1] // invert the complement
			fmt.Printf("  exchange %d: %8.0f shares at %6.2f  (P = %.3f)\n",
				res.Site, volume, price, res.GlobalProb)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nprogressiveness (cumulative network cost per confirmed deal):\n")
	step := len(report.Progress)/6 + 1
	for i := 0; i < len(report.Progress); i += step {
		p := report.Progress[i]
		fmt.Printf("  after %2d deal(s): %5d tuples moved, %8v elapsed\n",
			p.Reported, p.Tuples, p.Elapsed.Round(1e4))
	}
	fmt.Printf("\ntotal: %d deals, %d tuples transmitted (of %d stored), %v\n",
		len(report.Skyline), report.Bandwidth.Tuples(), trades, report.Elapsed.Round(1e6))
}
