// Federation: the full distributed deployment in one process — real TCP
// sites, a fault-tolerant coordinator, and live protocol tracing.
//
// Three "data centres" each serve an uncertain partition over loopback
// TCP (exactly what cmd/dsud-site does as a daemon). The coordinator
// connects with the retrying client (redial + exactly-once request
// execution) and runs e-DSUD while printing every protocol step, so you
// can watch the To-Server / Server-Delivery / Local-Pruning phases of the
// paper happen on real sockets.
//
// Run with:
//
//	go run ./examples/federation
package main

import (
	"context"
	"fmt"
	"log"
	"net"

	"repro/dsq"
	"repro/internal/site"
	"repro/internal/transport"
)

func main() {
	const (
		tuplesPerSite = 3000
		sites         = 3
	)

	db, err := dsq.GenerateWorkload(dsq.WorkloadConfig{
		N: tuplesPerSite * sites, Dims: 2,
		Values: dsq.Anticorrelated, Probs: dsq.UniformProb, Seed: 17,
	})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := dsq.PartitionWorkload(db, sites, 18)
	if err != nil {
		log.Fatal(err)
	}

	// Launch one TCP server per partition, as cmd/dsud-site would.
	addrs := make([]string, sites)
	for i, part := range parts {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := transport.NewServer(site.New(i, part, 2, 0), nil)
		go srv.Serve(lis)
		defer srv.Close()
		addrs[i] = lis.Addr().String()
		fmt.Printf("site %d serving %d tuples on %s\n", i, len(part), addrs[i])
	}

	cluster, err := dsq.Connect(dsq.ClusterConfig{Addrs: addrs, Dims: 2, RetryAttempts: 5})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fmt.Println("\nprotocol trace (first 14 steps):")
	steps := 0
	report, err := cluster.Query(context.Background(), dsq.Options{
		Threshold: 0.4,
		Algorithm: dsq.EDSUD,
		OnEvent: func(e dsq.Event) {
			if steps < 14 {
				fmt.Println(" ", e)
			} else if steps == 14 {
				fmt.Println("  ...")
			}
			steps++
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d skyline tuples over %d total protocol steps\n", len(report.Skyline), steps)
	fmt.Printf("network: %d tuples, %d messages, %d bytes on the wire, %v elapsed\n",
		report.Bandwidth.Tuples(), report.Bandwidth.Messages, report.Bandwidth.Bytes,
		report.Elapsed.Round(1e6))
	fmt.Printf("feedback machinery: %d broadcasts, %d expunged, %d locally pruned\n",
		report.Broadcasts, report.Expunged, report.PrunedLocal)
}
