// Updates: keeping the skyline answer alive under churn (§5.4).
//
// A sensor fleet reports uncertain 3-d readings to regional gateways;
// readings arrive and expire continuously. The example runs the initial
// distributed query once, then maintains the answer incrementally through
// a stream of inserts and deletes, comparing the cost with the naive
// recompute-from-scratch strategy.
//
// Run with:
//
//	go run ./examples/updates
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/dsq"
)

func main() {
	const (
		readings = 40_000
		gateways = 6
		churn    = 200 // update operations in the demo stream
	)

	db, err := dsq.GenerateWorkload(dsq.WorkloadConfig{
		N: readings, Dims: 3,
		Values: dsq.Independent, Probs: dsq.UniformProb, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := dsq.PartitionWorkload(db, gateways, 8)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := dsq.Connect(dsq.ClusterConfig{Partitions: parts, Dims: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	start := time.Now()
	maint, err := dsq.NewMaintainer(ctx, cluster, dsq.Options{Threshold: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial query over %d readings: %d skyline tuples in %v\n\n",
		readings, len(maint.Skyline()), time.Since(start).Round(1e6))

	// Mirror the partitions so we can pick live victims to delete.
	live := make([]dsq.DB, gateways)
	for i := range parts {
		live[i] = append(dsq.DB(nil), parts[i]...)
	}
	r := rand.New(rand.NewSource(9))
	nextID := dsq.TupleID(readings + 1)

	start = time.Now()
	inserts, deletes := 0, 0
	for op := 0; op < churn; op++ {
		gw := r.Intn(gateways)
		if r.Float64() < 0.5 || len(live[gw]) == 0 {
			tu := dsq.Tuple{
				ID:    nextID,
				Point: dsq.Point{r.Float64(), r.Float64(), r.Float64()},
				Prob:  0.05 + 0.95*r.Float64(),
			}
			nextID++
			if err := maint.Insert(ctx, gw, tu); err != nil {
				log.Fatal(err)
			}
			live[gw] = append(live[gw], tu)
			inserts++
		} else {
			k := r.Intn(len(live[gw]))
			victim := live[gw][k]
			live[gw] = append(live[gw][:k], live[gw][k+1:]...)
			if err := maint.Delete(ctx, gw, victim); err != nil {
				log.Fatal(err)
			}
			deletes++
		}
	}
	incElapsed := time.Since(start)
	fmt.Printf("incremental maintenance: %d inserts + %d deletes in %v (%.2f ms/update)\n",
		inserts, deletes, incElapsed.Round(1e6),
		float64(incElapsed.Microseconds())/float64(churn)/1000)
	fmt.Printf("answer is now %d skyline tuples\n\n", len(maint.Skyline()))

	// The naive alternative: a full re-query per update. One is enough to
	// make the point.
	start = time.Now()
	if err := maint.Refresh(ctx); err != nil {
		log.Fatal(err)
	}
	refresh := time.Since(start)
	fmt.Printf("one naive recompute costs %v — %d of them would have taken %v\n",
		refresh.Round(1e6), churn, (refresh * churn).Round(1e8))
	fmt.Printf("(and the refresh confirms the incremental answer: %d tuples)\n", len(maint.Skyline()))
}
