// Vertical: probabilistic skyline over a vertically partitioned relation
// — the paper's stated future work, implemented as VDSUD.
//
// A product-comparison service keeps each attribute of its catalogue at a
// different specialist site: one site serves prices sorted ascending,
// another serves delivery times, a third serves failure-report scores.
// Every product listing carries a confidence probability. The coordinator
// retrieves the probabilistic skyline with a bounded lock-step scan plus
// targeted random accesses instead of downloading the three full columns.
//
// Run with:
//
//	go run ./examples/vertical
package main

import (
	"fmt"
	"log"

	"repro/dsq"
)

func main() {
	const products = 50_000

	// Three minimised attributes: price, delivery days, defect score.
	db, err := dsq.GenerateWorkload(dsq.WorkloadConfig{
		N: products, Dims: 3,
		Values: dsq.Correlated, // cheap products ship fast and fail little, mostly
		Probs:  dsq.UniformProb,
		Seed:   11,
	})
	if err != nil {
		log.Fatal(err)
	}

	sites, err := dsq.SplitVertical(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalogue: %d products, one attribute list per site (%d sites)\n\n", products, len(sites))

	sky, stats, err := dsq.QueryVertical(sites, 0.3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("probabilistic skyline (q = 0.3): %d products\n", len(sky))
	for i, m := range sky {
		if i == 6 {
			fmt.Printf("  ... and %d more\n", len(sky)-6)
			break
		}
		fmt.Printf("  product %-6d price %.3f  delivery %.3f  defects %.3f  P = %.3f\n",
			m.Tuple.ID, m.Tuple.Point[0], m.Tuple.Point[1], m.Tuple.Point[2], m.Prob)
	}

	baseline := 3 * products
	fmt.Printf("\naccess cost: %d list entries (scan depth %d, %d random accesses, %d prefix entries)\n",
		stats.Entries(), stats.ScanDepth, stats.RandomEntries, stats.PrefixEntries)
	fmt.Printf("downloading the three columns outright would move %d entries — %.1fx more\n",
		baseline, float64(baseline)/float64(stats.Entries()))
}
