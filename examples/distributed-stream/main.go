// Distributed stream: a continuously maintained global skyline over
// sliding windows at the sites — composing the §5.4 incremental
// maintainer with window semantics.
//
// Each of four regional gateways keeps only its most recent readings
// (a per-site sliding window). Every arrival is an Insert, every expiry a
// Delete, and the coordinator's answer stays exact throughout — the
// distributed analogue of the centralized stream operator in
// examples/sensors.
//
// Run with:
//
//	go run ./examples/distributed-stream
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/dsq"
)

func main() {
	const (
		gateways   = 4
		windowSize = 1_500 // per gateway
		arrivals   = 12_000
	)

	// Pre-fill each gateway's window.
	db, err := dsq.GenerateWorkload(dsq.WorkloadConfig{
		N: gateways * windowSize, Dims: 2,
		Values: dsq.Independent, Probs: dsq.UniformProb, Seed: 31,
	})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := dsq.PartitionWorkload(db, gateways, 32)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := dsq.Connect(dsq.ClusterConfig{Partitions: parts, Dims: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	maint, err := dsq.NewMaintainer(ctx, cluster, dsq.Options{Threshold: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	// Replicate SKY(H) to the gateways so hopeless arrivals never trigger
	// a global round (§5.4).
	if err := maint.EnableReplicas(ctx); err != nil {
		log.Fatal(err)
	}

	// Per-gateway FIFO windows, seeded with the initial partitions.
	windows := make([][]dsq.Tuple, gateways)
	for i, part := range parts {
		windows[i] = append([]dsq.Tuple(nil), part...)
	}

	r := rand.New(rand.NewSource(33))
	nextID := dsq.TupleID(len(db) + 1)
	start := time.Now()
	for arrival := 0; arrival < arrivals; arrival++ {
		gw := arrival % gateways
		reading := dsq.Tuple{
			ID:    nextID,
			Point: dsq.Point{r.Float64(), r.Float64()},
			Prob:  0.05 + 0.95*r.Float64(),
		}
		nextID++
		// Slide: evict the oldest reading at this gateway first.
		oldest := windows[gw][0]
		windows[gw] = windows[gw][1:]
		if err := maint.Delete(ctx, gw, oldest); err != nil {
			log.Fatal(err)
		}
		if err := maint.Insert(ctx, gw, reading); err != nil {
			log.Fatal(err)
		}
		windows[gw] = append(windows[gw], reading)

		if (arrival+1)%3000 == 0 {
			sky := maint.Skyline()
			fmt.Printf("after %5d arrivals: %2d global skyline readings (best P = %.3f)\n",
				arrival+1, len(sky), sky[0].Prob)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("\n%d slide operations (delete+insert) in %v — %.2f ms per slide\n",
		arrivals, elapsed.Round(time.Millisecond),
		float64(elapsed.Microseconds())/float64(arrivals)/1000)
	fmt.Printf("final answer: %d readings across %d gateways\n",
		len(maint.Skyline()), gateways)
}
