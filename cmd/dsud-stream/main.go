// Command dsud-stream runs the continuous sliding-window skyline operator
// over a dataset file (or a generated stream), printing the answer
// whenever it changes size — a terminal demo of the §2.2 streaming
// setting.
//
// Usage:
//
//	dsud-stream -n 50000 -window 5000 -q 0.3 -values nyse
//	dsud-stream -data /tmp/parts/site-0.dsud -window 1000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/stream"
	"repro/internal/uncertain"
)

func main() {
	var (
		data   = flag.String("data", "", "dataset file (optional; otherwise generate)")
		n      = flag.Int("n", 50_000, "stream length when generating")
		d      = flag.Int("d", 2, "dimensionality when generating")
		values = flag.String("values", "independent", "value distribution: independent|anticorrelated|correlated|nyse")
		window = flag.Int("window", 5_000, "sliding window capacity")
		q      = flag.Float64("q", 0.3, "probability threshold")
		every  = flag.Int("every", 0, "print a status line every K arrivals (0 = only on size changes)")
		seed   = flag.Int64("seed", 1, "generation seed")
	)
	flag.Parse()

	var db uncertain.DB
	if *data != "" {
		loaded, _, err := dataset.Load(*data)
		if err != nil {
			fatalf("%v", err)
		}
		db = loaded
	} else {
		cfg := gen.Config{N: *n, Dims: *d, Probs: gen.UniformProb, Seed: *seed}
		switch *values {
		case "independent":
			cfg.Values = gen.Independent
		case "anticorrelated":
			cfg.Values = gen.Anticorrelated
		case "correlated":
			cfg.Values = gen.Correlated
		case "nyse":
			cfg.Values = gen.NYSE
			cfg.Dims = 0
		default:
			fatalf("unknown value distribution %q", *values)
		}
		generated, err := gen.Generate(cfg)
		if err != nil {
			fatalf("%v", err)
		}
		db = generated
	}

	w, err := stream.New(*window, *q, nil)
	if err != nil {
		fatalf("%v", err)
	}
	lastSize := -1
	for i, tu := range db {
		if _, err := w.Append(tu); err != nil {
			fatalf("append %d: %v", i, err)
		}
		size := len(w.Skyline())
		changed := size != lastSize
		periodic := *every > 0 && (i+1)%*every == 0
		if changed || periodic {
			fmt.Printf("arrival %7d: skyline %3d, candidates %4d, window %5d, dropped %7d\n",
				i+1, size, w.Candidates(), w.Len(), w.Drops())
			lastSize = size
		}
	}
	fmt.Printf("\nfinal skyline (%d tuples):\n", len(w.Skyline()))
	for i, m := range w.Skyline() {
		if i == 10 {
			fmt.Printf("  ...\n")
			break
		}
		fmt.Printf("  %s  P=%.4f\n", m.Tuple.Point, m.Prob)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dsud-stream: "+format+"\n", args...)
	os.Exit(1)
}
