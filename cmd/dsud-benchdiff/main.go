// Command dsud-benchdiff compares two BENCH_dsud.json benchmark
// artifacts (written by dsud-bench) and reports per-algorithm,
// per-metric deltas as a markdown table suitable for a PR comment.
//
// Usage:
//
//	dsud-benchdiff [flags] old.json new.json
//
// A delta is significant when the relative median movement exceeds the
// larger of a raw floor (-threshold for protocol counts, -time-threshold
// for wall time) and -cv-scale × the worse coefficient of variation of
// the two runs — so noisy series need a proportionally larger movement
// to trip the gate, and deterministic counts are held to the tight
// floor. Reads both v0 (point-estimate) and v1 (distribution) artifacts.
//
// Exit status: 0 when no metric regressed significantly, 1 on at least
// one significant regression, 2 on usage or artifact errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/perf"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		threshold       = flag.Float64("threshold", 0.05, "relative significance floor for count metrics (0.05 = 5%)")
		timeThreshold   = flag.Float64("time-threshold", 0.25, "relative significance floor for wall-time metrics")
		cvScale         = flag.Float64("cv-scale", 3, "noise scaling: limit = max(floor, cv-scale × max CV)")
		quiet           = flag.Bool("quiet", false, "suppress the markdown table; exit status only")
		minMuxSpeedup   = flag.Float64("min-mux-speedup", 0, "fail unless the new artifact's highest-concurrency throughput shows at least this mux-over-serial speedup (0 = no gate)")
		maxP99Regress   = flag.Float64("max-p99-regress", 0, "fail when the soak p99 latency median regressed by more than this relative amount, e.g. 0.25 = 25% (0 = no gate; requires a soak section in both artifacts)")
		maxAUCRegress   = flag.Float64("max-auc-regress", 0, "fail when any algorithm's bandwidth-AUC median dropped by more than this relative amount, e.g. 0.05 = 5% (0 = no gate; requires a progressiveness section in both artifacts)")
		minServeSpeedup = flag.Float64("min-serve-speedup", 0, "fail unless the new artifact's highest-concurrency throughput shows at least this materialized-over-mux speedup (0 = no gate)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dsud-benchdiff [flags] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		return 2
	}

	oldA, err := perf.ReadArtifactFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsud-benchdiff: %v\n", err)
		return 2
	}
	newA, err := perf.ReadArtifactFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsud-benchdiff: %v\n", err)
		return 2
	}

	deltas := perf.Diff(oldA, newA, perf.DiffOptions{
		Threshold:     *threshold,
		TimeThreshold: *timeThreshold,
		CVScale:       *cvScale,
	})
	if len(deltas) == 0 {
		fmt.Fprintf(os.Stderr, "dsud-benchdiff: the artifacts share no (algorithm, metric) pairs\n")
		return 2
	}
	if !*quiet {
		if err := perf.WriteMarkdown(os.Stdout, oldA, newA, deltas); err != nil {
			fmt.Fprintf(os.Stderr, "dsud-benchdiff: %v\n", err)
			return 2
		}
	}
	status := 0
	if n := perf.Regressions(deltas); n > 0 {
		fmt.Fprintf(os.Stderr, "dsud-benchdiff: %d significant regression(s)\n", n)
		status = 1
	}
	if *minMuxSpeedup > 0 {
		tr := newA.MaxThroughput()
		switch {
		case tr == nil:
			fmt.Fprintf(os.Stderr, "dsud-benchdiff: -min-mux-speedup: new artifact carries no throughput section (run dsud-bench with -concurrency)\n")
			return 2
		case tr.Speedup < *minMuxSpeedup:
			fmt.Fprintf(os.Stderr, "dsud-benchdiff: mux speedup %.2fx at %d client(s) is below the %.2fx gate\n",
				tr.Speedup, tr.Concurrency, *minMuxSpeedup)
			status = 1
		default:
			if !*quiet {
				fmt.Printf("\nmux throughput gate: %.2fx at %d client(s) ≥ %.2fx ✔\n",
					tr.Speedup, tr.Concurrency, *minMuxSpeedup)
			}
		}
	}
	if *minServeSpeedup > 0 {
		tr := newA.MaxThroughput()
		switch {
		case tr == nil || tr.ServeSpeedup == 0:
			fmt.Fprintf(os.Stderr, "dsud-benchdiff: -min-serve-speedup: new artifact carries no materialized throughput (run dsud-bench with -concurrency on a build with the serving tier)\n")
			return 2
		case tr.ServeSpeedup < *minServeSpeedup:
			fmt.Fprintf(os.Stderr, "dsud-benchdiff: materialized serving speedup %.1fx at %d client(s) is below the %.1fx gate\n",
				tr.ServeSpeedup, tr.Concurrency, *minServeSpeedup)
			status = 1
		default:
			if !*quiet {
				fmt.Printf("\nmaterialized serving gate: %.1fx over mux at %d client(s) ≥ %.1fx ✔\n",
					tr.ServeSpeedup, tr.Concurrency, *minServeSpeedup)
			}
		}
	}
	if *maxP99Regress > 0 {
		oldMed, newMed, rel, ok := perf.SoakP99Delta(oldA, newA)
		switch {
		case !ok:
			fmt.Fprintf(os.Stderr, "dsud-benchdiff: -max-p99-regress: both artifacts need a soak section with a p99 distribution (run dsud-loadgen -artifact)\n")
			return 2
		case rel > *maxP99Regress:
			fmt.Fprintf(os.Stderr, "dsud-benchdiff: soak p99 regressed %.1f%% (%.2fms → %.2fms), over the %.1f%% gate\n",
				rel*100, oldMed, newMed, *maxP99Regress*100)
			status = 1
		default:
			if !*quiet {
				fmt.Printf("\nsoak p99 gate: %+.1f%% (%.2fms → %.2fms) within %.1f%% ✔\n",
					rel*100, oldMed, newMed, *maxP99Regress*100)
			}
		}
	}
	if *maxAUCRegress > 0 {
		deltas := perf.AUCDeltas(oldA, newA)
		if len(deltas) == 0 {
			fmt.Fprintf(os.Stderr, "dsud-benchdiff: -max-auc-regress: both artifacts need a progressiveness section (run dsud-bench -bench-json)\n")
			return 2
		}
		worst := deltas[0]
		for _, d := range deltas[1:] {
			if d.Drop > worst.Drop {
				worst = d
			}
		}
		if worst.Drop > *maxAUCRegress {
			fmt.Fprintf(os.Stderr, "dsud-benchdiff: %s bandwidth AUC dropped %.1f%% (%.4f → %.4f), over the %.1f%% gate — the query got less progressive\n",
				worst.Algorithm, worst.Drop*100, worst.Old, worst.New, *maxAUCRegress*100)
			status = 1
		} else if !*quiet {
			fmt.Printf("\nprogressiveness gate: worst AUC drop %+.1f%% (%s, %.4f → %.4f) within %.1f%% ✔\n",
				worst.Drop*100, worst.Algorithm, worst.Old, worst.New, *maxAUCRegress*100)
		}
	}
	return status
}
