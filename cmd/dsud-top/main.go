// Command dsud-top is a live terminal dashboard for a running DSUD
// cluster: it polls each site's /statusz ops endpoint (and optionally a
// /slostatusz SLO page, e.g. dsud-loadgen's) and renders per-site
// request rate, in-flight count, windowed p50/p95/p99 latency, mux
// worker-pool saturation and SLO burn in place, top(1)-style.
//
// Usage:
//
//	dsud-top -sites http://127.0.0.1:9101,http://127.0.0.1:9102
//	dsud-top -sites ... -slo http://127.0.0.1:9100 -interval 1s
//	dsud-top -sites ... -once        # single frame, no clearing (CI)
//
// Site addresses may omit the scheme (host:port implies http://). The
// request rate prefers the site's own rotating-window rate (exact over
// the last ~10-20s) and falls back to Δrequests/Δpoll for sites that
// predate the windowed telemetry.
//
// Exit status: 0; with -once, 1 when any site was unreachable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/obs/slo"
	"repro/internal/transport"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		sitesFlag = flag.String("sites", "", "comma-separated site /statusz base URLs (required)")
		sloFlag   = flag.String("slo", "", "optional /slostatusz base URL (e.g. a dsud-loadgen -debug-addr)")
		interval  = flag.Duration("interval", 2*time.Second, "poll and redraw cadence")
		once      = flag.Bool("once", false, "render a single frame without clearing and exit (scripting/CI)")
	)
	flag.Parse()
	if *sitesFlag == "" {
		flag.Usage()
		return 2
	}
	var sites []string
	for _, s := range strings.Split(*sitesFlag, ",") {
		sites = append(sites, normalizeURL(strings.TrimSpace(s)))
	}
	sloURL := ""
	if *sloFlag != "" {
		sloURL = normalizeURL(strings.TrimSpace(*sloFlag))
	}

	top := &top{
		client: &http.Client{Timeout: 2 * time.Second},
		sites:  sites,
		slo:    sloURL,
		prev:   make(map[string]sample),
	}

	if *once {
		down := top.render(os.Stdout)
		if down > 0 {
			return 1
		}
		return 0
	}

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		fmt.Print("\x1b[H\x1b[2J") // cursor home + clear: redraw in place
		top.render(os.Stdout)
		select {
		case <-interrupt:
			fmt.Println()
			return 0
		case <-ticker.C:
		}
	}
}

// sample remembers one poll's counter so the next poll can fall back to
// Δrequests/Δt for sites without windowed telemetry.
type sample struct {
	requests uint64
	at       time.Time
}

type top struct {
	client *http.Client
	sites  []string
	slo    string
	prev   map[string]sample
}

// render draws one frame and returns how many sites were unreachable.
func (t *top) render(w *os.File) int {
	now := time.Now()
	fmt.Fprintf(w, "dsud-top  %s  %d site(s)\n\n", now.Format("15:04:05"), len(t.sites))
	fmt.Fprintf(w, "%-28s %-7s %8s %8s %8s %8s %8s %8s %8s %6s\n",
		"SITE", "STATE", "TUPLES", "INFLIGHT", "RPS", "P50MS", "P95MS", "P99MS", "WORKERS", "QUEUED")
	down := 0
	for _, url := range t.sites {
		st, err := t.fetchStatus(url)
		if err != nil {
			fmt.Fprintf(w, "%-28s %-7s %v\n", trimURL(url), "DOWN", err)
			down++
			continue
		}
		rps := st.WindowRate
		if rps == 0 {
			// Pre-window site (or idle): derive from the monotone counter.
			if p, ok := t.prev[url]; ok && now.After(p.at) && st.RequestsTotal >= p.requests {
				rps = float64(st.RequestsTotal-p.requests) / now.Sub(p.at).Seconds()
			}
		}
		t.prev[url] = sample{requests: st.RequestsTotal, at: now}
		workers := "-"
		if st.MuxWorkerLimit > 0 {
			workers = fmt.Sprintf("%d/%d", st.MuxWorkersBusy, st.MuxWorkerLimit)
		}
		fmt.Fprintf(w, "%-28s %-7s %8d %8d %8.1f %8s %8s %8s %8s %6d\n",
			trimURL(url), "UP", st.Tuples, st.InFlight, rps,
			ms(st.LatencyP50Ms), ms(st.LatencyP95Ms), ms(st.LatencyP99Ms),
			workers, st.MuxQueued)
	}
	if t.slo != "" {
		fmt.Fprintln(w)
		statuses, err := t.fetchSLO(t.slo)
		switch {
		case err != nil:
			fmt.Fprintf(w, "slo %s: %v\n", trimURL(t.slo), err)
		case len(statuses) == 0:
			fmt.Fprintf(w, "slo %s: no objectives configured\n", trimURL(t.slo))
		default:
			slo.WriteText(w, statuses)
		}
	}
	return down
}

func (t *top) fetchStatus(base string) (*transport.SiteStatus, error) {
	resp, err := t.client.Get(base + "/statusz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("http %d", resp.StatusCode)
	}
	var st transport.SiteStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func (t *top) fetchSLO(base string) ([]slo.Status, error) {
	resp, err := t.client.Get(base + "/slostatusz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("http %d", resp.StatusCode)
	}
	var page struct {
		Objectives []slo.Status `json:"objectives"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return nil, err
	}
	return page.Objectives, nil
}

// ms renders a windowed latency figure, "-" when the site has no
// windowed telemetry (older build) or saw no traffic in the window.
func ms(v float64) string {
	if v <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}

// normalizeURL accepts host:port or a full URL and returns a scheme-ful
// base with no trailing slash.
func normalizeURL(s string) string {
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return strings.TrimRight(s, "/")
}

// trimURL shortens a base URL for the SITE column.
func trimURL(s string) string {
	s = strings.TrimPrefix(s, "http://")
	if len(s) > 28 {
		s = s[:28]
	}
	return s
}
