// Command dsud-top is a live terminal dashboard for a running DSUD
// cluster: it polls each site's /statusz ops endpoint (and optionally a
// /slostatusz SLO page, e.g. dsud-loadgen's) and renders per-site
// request rate, in-flight count, windowed p50/p95/p99 latency, mux
// worker-pool saturation and SLO burn in place, top(1)-style.
//
// Usage:
//
//	dsud-top -sites http://127.0.0.1:9101,http://127.0.0.1:9102
//	dsud-top -sites ... -slo http://127.0.0.1:9100 -interval 1s
//	dsud-top -sites ... -once        # single frame, no clearing (CI)
//	dsud-top -cluster http://127.0.0.1:9100
//
// With -cluster it reads a telemetry coordinator's single /clusterz
// endpoint (dsud-query -watch) instead of scraping sites directly: every
// row comes from the sites' pushed telemetry, annotated with push age,
// staleness marks, and a sparkline of recent p99 history from the
// coordinator's time-series ring. When the same coordinator also serves
// /queryz (delivery-curve digests), the frame gains a per-site DLVRD
// (skyline tuples delivered) column and a progressiveness summary line
// (median TTFR, median bandwidth AUC); a coordinator that predates
// /queryz renders "-" there and still passes -once.
//
// Site addresses may omit the scheme (host:port implies http://). The
// request rate prefers the site's own rotating-window rate (exact over
// the last ~10-20s) and falls back to Δrequests/Δpoll for sites that
// predate the windowed telemetry.
//
// Exit status: 0; with -once, 1 when any scrape failed (site, SLO page,
// or coordinator) or any site in the cluster view is stale — a partial
// frame must not pass a CI smoke.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"repro/dsq"
	"repro/internal/obs/slo"
	"repro/internal/obs/tsdb"
	"repro/internal/transport"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		sitesFlag   = flag.String("sites", "", "comma-separated site /statusz base URLs (this or -cluster is required)")
		clusterFlag = flag.String("cluster", "", "telemetry coordinator /clusterz base URL (a dsud-query -watch -debug-addr); replaces per-site scraping")
		sloFlag     = flag.String("slo", "", "optional /slostatusz base URL (e.g. a dsud-loadgen -debug-addr)")
		interval    = flag.Duration("interval", 2*time.Second, "poll and redraw cadence")
		once        = flag.Bool("once", false, "render a single frame without clearing and exit (scripting/CI)")
	)
	flag.Parse()
	if (*sitesFlag == "") == (*clusterFlag == "") {
		flag.Usage()
		return 2
	}
	var sites []string
	if *sitesFlag != "" {
		for _, s := range strings.Split(*sitesFlag, ",") {
			sites = append(sites, normalizeURL(strings.TrimSpace(s)))
		}
	}
	sloURL := ""
	if *sloFlag != "" {
		sloURL = normalizeURL(strings.TrimSpace(*sloFlag))
	}

	top := &top{
		client: &http.Client{Timeout: 2 * time.Second},
		sites:  sites,
		slo:    sloURL,
		prev:   make(map[string]sample),
	}
	if *clusterFlag != "" {
		top.cluster = normalizeURL(strings.TrimSpace(*clusterFlag))
	}

	if *once {
		down := top.render(os.Stdout)
		if down > 0 {
			return 1
		}
		return 0
	}

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		fmt.Print("\x1b[H\x1b[2J") // cursor home + clear: redraw in place
		top.render(os.Stdout)
		select {
		case <-interrupt:
			fmt.Println()
			return 0
		case <-ticker.C:
		}
	}
}

// sample remembers one poll's counter so the next poll can fall back to
// Δrequests/Δt for sites without windowed telemetry.
type sample struct {
	requests uint64
	at       time.Time
}

type top struct {
	client  *http.Client
	sites   []string
	cluster string // /clusterz base URL; when set, replaces direct scrapes
	slo     string
	prev    map[string]sample
}

// render draws one frame and returns how many scrapes failed (dead
// sites, a failed SLO fetch, an unreachable coordinator, stale cluster
// entries) — the -once exit signal.
func (t *top) render(w *os.File) int {
	if t.cluster != "" {
		return t.renderCluster(w)
	}
	now := time.Now()
	fmt.Fprintf(w, "dsud-top  %s  %d site(s)\n\n", now.Format("15:04:05"), len(t.sites))
	fmt.Fprintf(w, "%-28s %-7s %8s %8s %8s %8s %8s %8s %8s %6s\n",
		"SITE", "STATE", "TUPLES", "INFLIGHT", "RPS", "P50MS", "P95MS", "P99MS", "WORKERS", "QUEUED")
	down := 0
	for _, url := range t.sites {
		st, err := t.fetchStatus(url)
		if err != nil {
			fmt.Fprintf(w, "%-28s %-7s %v\n", trimURL(url), "DOWN", err)
			down++
			continue
		}
		rps := st.WindowRate
		if rps == 0 {
			// Pre-window site (or idle): derive from the monotone counter.
			if p, ok := t.prev[url]; ok && now.After(p.at) && st.RequestsTotal >= p.requests {
				rps = float64(st.RequestsTotal-p.requests) / now.Sub(p.at).Seconds()
			}
		}
		t.prev[url] = sample{requests: st.RequestsTotal, at: now}
		workers := "-"
		if st.MuxWorkerLimit > 0 {
			workers = fmt.Sprintf("%d/%d", st.MuxWorkersBusy, st.MuxWorkerLimit)
		}
		fmt.Fprintf(w, "%-28s %-7s %8d %8d %8.1f %8s %8s %8s %8s %6d\n",
			trimURL(url), "UP", st.Tuples, st.InFlight, rps,
			ms(st.LatencyP50Ms), ms(st.LatencyP95Ms), ms(st.LatencyP99Ms),
			workers, st.MuxQueued)
	}
	if t.slo != "" {
		fmt.Fprintln(w)
		statuses, err := t.fetchSLO(t.slo)
		switch {
		case err != nil:
			// A failed SLO scrape is a failed scrape: -once must not pass
			// a CI smoke on a partial frame.
			fmt.Fprintf(w, "slo %s: %v\n", trimURL(t.slo), err)
			down++
		case len(statuses) == 0:
			fmt.Fprintf(w, "slo %s: no objectives configured\n", trimURL(t.slo))
		default:
			slo.WriteText(w, statuses)
		}
	}
	return down
}

// renderCluster draws one frame from the coordinator's aggregated
// /clusterz document — no direct site scrapes. Returns how many entries
// are bad (coordinator unreachable, or sites stale/unsubscribed). A
// coordinator without /queryz (predates delivery-curve digests) is a
// soft miss: the DLVRD column degrades to "-" and -once still passes.
func (t *top) renderCluster(w *os.File) int {
	doc, err := t.fetchClusterz()
	if err != nil {
		fmt.Fprintf(w, "cluster %s: %v\n", trimURL(t.cluster), err)
		return 1
	}
	qz := t.fetchQueryz()
	fmt.Fprintf(w, "dsud-top  %s  cluster %s  %d site(s): %d fresh, %d stale\n",
		time.Now().Format("15:04:05"), trimURL(t.cluster), doc.Sites, doc.Fresh, doc.Stale)
	fmt.Fprintf(w, "cluster rate %.1f/s  p50 %s  p95 %s  p99 %s  (merged over fresh sites, push interval %v)\n\n",
		doc.Rate, ms(doc.P50Ms), ms(doc.P95Ms), ms(doc.P99Ms), time.Duration(doc.IntervalNS))
	fmt.Fprintf(w, "%-5s %-6s %7s %8s %8s %8s %8s %8s %8s %6s %6s %6s  %s\n",
		"SITE", "STATE", "AGE", "PUSHES", "TUPLES", "INFLIGHT", "RPS", "P50MS", "P99MS", "BUSY", "QUEUED", "DLVRD", "P99 HISTORY")
	bad := 0
	for _, s := range doc.PerSite {
		if s.Err != "" && s.Pushes == 0 {
			fmt.Fprintf(w, "%-5d %-6s %s\n", s.Site, "DOWN", s.Err)
			bad++
			continue
		}
		state := "FRESH"
		if s.Stale {
			state = "STALE"
			bad++
		}
		rps := 0.0
		if s.Latest.WindowSpanNS > 0 {
			rps = float64(s.Latest.WindowCount) / (float64(s.Latest.WindowSpanNS) / float64(time.Second))
		}
		fmt.Fprintf(w, "%-5d %-6s %6.1fs %8d %8d %8d %8.1f %8s %8s %6d %6d %6s  %s\n",
			s.Site, state, s.AgeSeconds, s.Pushes, s.Latest.Tuples, s.Latest.InFlight, rps,
			ms(lastValue(s.History[tsdb.SeriesP50])), ms(lastValue(s.History[tsdb.SeriesP99])),
			s.Latest.MuxBusy, s.Latest.MuxQueued, qz.delivered(s.Site), spark(s.History[tsdb.SeriesP99], 32))
		for _, o := range s.Latest.SLO {
			if o.Breached {
				fmt.Fprintf(w, "      slo %s BREACHED: current %.4g target %.4g burn %.2f\n",
					o.Name, o.Current, o.Target, o.Burn)
			}
		}
	}
	fmt.Fprintln(w)
	qz.writeSummary(w)
	return bad
}

// queryzDump is the slice of the coordinator's /queryz document dsud-top
// renders: per-site delivered counts and the progressiveness summary of
// the retained delivery-curve digests. nil means the coordinator has no
// /queryz (older build) — every accessor degrades to "-".
type queryzDump struct {
	Total   uint64 `json:"total"`
	Queries []struct {
		Results      int32   `json:"results"`
		AUCBandwidth float64 `json:"auc_bandwidth"`
		TTFirstNS    int64   `json:"ttf_ns"`
		Slow         bool    `json:"slow"`
		PerSite      []int32 `json:"per_site"`
	} `json:"queries"`
}

// delivered sums a site's skyline contributions over the retained
// digests; "-" when /queryz is absent or the site is beyond the digest's
// per-site capacity.
func (qz *queryzDump) delivered(site int64) string {
	if qz == nil {
		return "-"
	}
	total, tracked := int64(0), false
	for _, q := range qz.Queries {
		if site < int64(len(q.PerSite)) {
			tracked = true
			total += int64(q.PerSite[site])
		}
	}
	if !tracked {
		return "-"
	}
	return fmt.Sprintf("%d", total)
}

// writeSummary prints the one-line progressiveness rollup of the
// retained queries (median TTFR and bandwidth AUC), or the soft-miss
// note for coordinators that predate /queryz.
func (qz *queryzDump) writeSummary(w *os.File) {
	if qz == nil {
		fmt.Fprintf(w, "queries: /queryz unavailable (coordinator predates delivery-curve digests)\n")
		return
	}
	if len(qz.Queries) == 0 {
		fmt.Fprintf(w, "queries: none retained yet\n")
		return
	}
	ttfr := make([]float64, 0, len(qz.Queries))
	auc := make([]float64, 0, len(qz.Queries))
	slow := 0
	for _, q := range qz.Queries {
		ttfr = append(ttfr, float64(q.TTFirstNS)/1e6)
		auc = append(auc, q.AUCBandwidth)
		if q.Slow {
			slow++
		}
	}
	fmt.Fprintf(w, "queries: %d retained (%d recorded, %d slow)  ttfr p50 %s ms  auc(bw) p50 %.3f\n",
		len(qz.Queries), qz.Total, slow, ms(median(ttfr)), median(auc))
}

// median of a non-empty slice (sorts in place).
func median(xs []float64) float64 {
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

// fetchQueryz reads the coordinator's /queryz delivery-curve ring. Any
// failure — 404 from an older coordinator, transport error — is a soft
// miss returning nil: coordinator reachability is already gated by the
// /clusterz fetch, and a missing digest ring must not fail -once.
func (t *top) fetchQueryz() *queryzDump {
	resp, err := t.client.Get(t.cluster + "/queryz")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var qz queryzDump
	if err := json.NewDecoder(resp.Body).Decode(&qz); err != nil {
		return nil
	}
	return &qz
}

func (t *top) fetchClusterz() (*dsq.Clusterz, error) {
	resp, err := t.client.Get(t.cluster + "/clusterz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("http %d", resp.StatusCode)
	}
	var doc dsq.Clusterz
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// lastValue is the newest sample of a series history ("" -> "-" via ms).
func lastValue(pts []tsdb.Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	return pts[len(pts)-1].Value
}

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// spark renders up to width samples as a unicode sparkline, scaled to
// the window's own maximum (flat zero history renders as a floor line).
func spark(pts []tsdb.Point, width int) string {
	if len(pts) == 0 {
		return ""
	}
	if len(pts) > width {
		pts = pts[len(pts)-width:]
	}
	max := 0.0
	for _, p := range pts {
		if p.Value > max {
			max = p.Value
		}
	}
	var b strings.Builder
	for _, p := range pts {
		i := 0
		if max > 0 {
			i = int(p.Value / max * float64(len(sparkLevels)-1))
			if i < 0 {
				i = 0
			}
			if i >= len(sparkLevels) {
				i = len(sparkLevels) - 1
			}
		}
		b.WriteRune(sparkLevels[i])
	}
	return b.String()
}

func (t *top) fetchStatus(base string) (*transport.SiteStatus, error) {
	resp, err := t.client.Get(base + "/statusz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("http %d", resp.StatusCode)
	}
	var st transport.SiteStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func (t *top) fetchSLO(base string) ([]slo.Status, error) {
	resp, err := t.client.Get(base + "/slostatusz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("http %d", resp.StatusCode)
	}
	var page struct {
		Objectives []slo.Status `json:"objectives"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return nil, err
	}
	return page.Objectives, nil
}

// ms renders a windowed latency figure, "-" when the site has no
// windowed telemetry (older build) or saw no traffic in the window.
func ms(v float64) string {
	if v <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}

// normalizeURL accepts host:port or a full URL and returns a scheme-ful
// base with no trailing slash.
func normalizeURL(s string) string {
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return strings.TrimRight(s, "/")
}

// trimURL shortens a base URL for the SITE column.
func trimURL(s string) string {
	s = strings.TrimPrefix(s, "http://")
	if len(s) > 28 {
		s = s[:28]
	}
	return s
}
