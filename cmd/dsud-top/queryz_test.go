package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// A coordinator serving /queryz feeds the DLVRD column and the
// progressiveness summary; one without it (or an unreachable one) is a
// soft miss — nil dump, every accessor degrades to "-".
func TestFetchQueryzSoftMiss(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	tp := &top{client: srv.Client(), cluster: srv.URL}
	if qz := tp.fetchQueryz(); qz != nil {
		t.Fatalf("404 /queryz must be a soft miss, got %+v", qz)
	}
	tp.cluster = "http://127.0.0.1:1" // nothing listens here
	if qz := tp.fetchQueryz(); qz != nil {
		t.Fatalf("unreachable /queryz must be a soft miss, got %+v", qz)
	}
	var nilDump *queryzDump
	if got := nilDump.delivered(0); got != "-" {
		t.Errorf("nil dump delivered = %q, want -", got)
	}
}

func TestFetchQueryzDelivered(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/queryz" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(`{"total": 3, "queries": [
			{"results": 5, "auc_bandwidth": 0.4, "ttf_ns": 2000000, "per_site": [3, 2]},
			{"results": 4, "auc_bandwidth": 0.5, "ttf_ns": 1000000, "slow": true, "per_site": [1, 3]}
		]}`))
	}))
	defer srv.Close()
	tp := &top{client: srv.Client(), cluster: srv.URL}
	qz := tp.fetchQueryz()
	if qz == nil {
		t.Fatal("fetchQueryz returned nil for a serving coordinator")
	}
	if got := qz.delivered(0); got != "4" {
		t.Errorf("site 0 delivered = %q, want 4", got)
	}
	if got := qz.delivered(1); got != "5" {
		t.Errorf("site 1 delivered = %q, want 5", got)
	}
	// Beyond the digest's per-site capacity the column degrades.
	if got := qz.delivered(99); got != "-" {
		t.Errorf("untracked site delivered = %q, want -", got)
	}
}
