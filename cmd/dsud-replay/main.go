// Command dsud-replay consumes black-box transcripts (.dstr files)
// recorded by the coordinator (dsud-query -record, or sampled via
// -record-sample / ClusterConfig.TranscriptSample).
//
// Replay mode re-runs the recorded query offline through the real round
// engine against stub sites that answer verbatim from the recording —
// no sockets, no data — and verifies the replay reproduces the pinned
// outcome exactly: skyline set and order, delivery ordinals, per-site
// shipped/pruned tallies, tuple/message/byte totals and the
// bandwidth-axis delivery-curve AUC. Any disagreement means the current
// build's protocol decisions differ from the recording's, and the exit
// status is nonzero:
//
//	dsud-replay query-0000abcd-1.dstr
//
// Diff mode compares two transcripts of the same query — typically one
// recorded by a known-good build and one by a suspect build — and
// localizes the regression to the first protocol round where the two
// disagree (plus header, per-phase message/byte and outcome deltas):
//
//	dsud-replay -diff good.dstr bad.dstr
//
// Exit status: 0 when the replay reproduces the recording (or the two
// transcripts agree), 1 on divergence, 2 on usage or I/O errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/dsq"
)

func main() {
	var (
		diff  = flag.Bool("diff", false, "compare two transcripts instead of replaying one")
		quiet = flag.Bool("quiet", false, "suppress per-tuple replay output")
	)
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: dsud-replay -diff a.dstr b.dstr")
			os.Exit(2)
		}
		os.Exit(runDiff(flag.Arg(0), flag.Arg(1)))
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dsud-replay [-quiet] transcript.dstr | dsud-replay -diff a.dstr b.dstr")
		os.Exit(2)
	}
	os.Exit(runReplay(flag.Arg(0), *quiet))
}

func runReplay(path string, quiet bool) int {
	tr, err := dsq.ReadTranscript(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsud-replay: %v\n", err)
		return 2
	}
	h := &tr.Header
	fmt.Printf("replaying %s: query %016x algo=%s q=%v sites=%d messages=%d (skipped %d unknown frames)\n",
		path, h.QueryID, dsq.Algorithm(h.Algorithm), h.Threshold, h.Sites, len(tr.Messages), tr.Skipped)

	var onResult func(dsq.Result)
	if !quiet {
		onResult = func(r dsq.Result) {
			fmt.Printf("skyline #%d %s  P=%.4f  (site %d)\n", r.Index, r.Tuple.Point, r.GlobalProb, r.Site)
		}
	}
	res, err := dsq.Replay(context.Background(), tr, onResult)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsud-replay: %v\n", err)
		return 2
	}
	rep := res.Report
	bw := rep.Bandwidth
	fmt.Printf("\n%d skyline tuple(s), %d iterations, %d broadcasts\n", len(rep.Skyline), rep.Iterations, rep.Broadcasts)
	fmt.Printf("bandwidth: %d tuples (%d up, %d down), %d messages, %d wire bytes\n",
		bw.Tuples(), bw.TuplesUp, bw.TuplesDown, bw.Messages, bw.Bytes)
	if !res.Ok() {
		fmt.Fprintf(os.Stderr, "\nreplay DIVERGED from the recording in %d way(s):\n", len(res.Mismatches))
		for _, m := range res.Mismatches {
			fmt.Fprintf(os.Stderr, "  %s\n", m)
		}
		return 1
	}
	fmt.Println("replay reproduced the recording exactly")
	return 0
}

func runDiff(pathA, pathB string) int {
	a, err := dsq.ReadTranscript(pathA)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsud-replay: %v\n", err)
		return 2
	}
	b, err := dsq.ReadTranscript(pathB)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsud-replay: %v\n", err)
		return 2
	}
	d, err := dsq.CompareTranscripts(a, b)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsud-replay: %v\n", err)
		return 2
	}
	fmt.Printf("diff %s (%d msgs) vs %s (%d msgs):\n", pathA, len(a.Messages), pathB, len(b.Messages))
	if _, err := d.WriteTo(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "dsud-replay: %v\n", err)
		return 2
	}
	if !d.Equal {
		return 1
	}
	return 0
}
