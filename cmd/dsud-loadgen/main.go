// Command dsud-loadgen drives sustained mixed query+update traffic
// against a DSUD cluster through dsq.Connect (the multiplexed v2 wire
// protocol) and reports latency percentiles, throughput and outcome
// counts. The generator is open-loop: arrivals are scheduled by the
// clock at -rps under a -profile (steady, burst or ramp), and each
// request's latency is measured from its scheduled arrival — a
// saturated cluster shows its real queueing delay instead of the
// flattering closed-loop numbers a blocked generator would produce.
//
// Usage:
//
//	dsud-loadgen -addrs 127.0.0.1:7101,127.0.0.1:7102 -rps 100 -duration 30s
//	dsud-loadgen -self-host -sites 3 -rps 200 -profile burst
//	dsud-loadgen -addrs ... -artifact BENCH_dsud.json   # merge a soak section
//
// With -self-host the generator spins up loopback site daemons itself
// (no external cluster needed — the CI smoke mode). With -debug-addr it
// serves /metrics, /vars, /slostatusz and /debug/pprof/ live during the
// run. Declarative SLOs (-slo-p99, -slo-error-rate, -slo-ttfr-p95) are
// evaluated over rotating windows while the load runs; a sustained
// breach triggers a flight-recorder dump (with -flight-dir) and, with
// -slo-strict, a nonzero exit.
//
// Exit status: 0 on success, 1 when -max-error-rate or a -slo-strict
// objective failed, 2 on usage errors, 3 on audit invariant violations.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/dsq"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/obs/slo"
	"repro/internal/perf"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addrs    = flag.String("addrs", "", "comma-separated site addresses (mutually exclusive with -self-host)")
		dims     = flag.Int("dims", experiments.DefaultDims, "data dimensionality of the target cluster")
		selfHost = flag.Bool("self-host", false, "spin up loopback site daemons instead of dialing -addrs")
		n        = flag.Int("n", 2000, "self-host: workload cardinality")
		sites    = flag.Int("sites", 3, "self-host: number of loopback sites")
		genSeed  = flag.Int64("gen-seed", 7, "self-host: workload generation seed")

		rps       = flag.Float64("rps", 50, "offered request rate (requests/second)")
		duration  = flag.Duration("duration", 5*time.Second, "length of one soak iteration")
		iters     = flag.Int("iterations", 3, "soak iterations (the artifact wants distributions, not points)")
		workers   = flag.Int("workers", 8, "concurrent in-flight query cap (arrivals beyond it queue, and the wait counts as latency)")
		deadline  = flag.Duration("deadline", 2*time.Second, "per-request budget; slower requests classify as deadline")
		profile   = flag.String("profile", experiments.ProfileSteady, "arrival shape: steady|burst|ramp")
		burstF    = flag.Float64("burst-factor", 4, "burst profile: on-phase rate multiplier")
		burstP    = flag.Duration("burst-period", time.Second, "burst profile: on/off phase length")
		updFrac   = flag.Float64("update-fraction", 0, "share of offered traffic that is insert/delete maintenance, in [0,1)")
		threshold = flag.Float64("threshold", experiments.DefaultThreshold, "skyline probability threshold")
		algo      = flag.String("algo", "edsud", "query algorithm: dsud|edsud")
		mode      = flag.String("mode", "protocol", "read path: protocol (one round per query) or materialized (warm a serving tier once, serve prefix reads; updates flow through it)")
		seed      = flag.Int64("seed", 11, "update-stream seed")

		auditFrac    = flag.Float64("audit-fraction", 0, "probability a completed query is re-checked against the centralized oracle (0 = off); any violation exits 3")
		maxErrorRate = flag.Float64("max-error-rate", 1, "fail (exit 1) when (errors+deadline)/requests exceeds this")

		sloP99     = flag.Duration("slo-p99", 0, "SLO: windowed p99 scheduled-arrival latency must stay under this (0 = off)")
		sloErrRate = flag.Float64("slo-error-rate", 0, "SLO: windowed error rate must stay under this fraction (0 = off)")
		sloTTFR    = flag.Duration("slo-ttfr-p95", 0, "SLO: windowed p95 time-to-first-result must stay under this (0 = off)")
		sloEvery   = flag.Duration("slo-interval", 2*time.Second, "SLO evaluation cadence during the run")
		sloStrict  = flag.Bool("slo-strict", false, "exit 1 when any SLO is breached at the final evaluation")

		artifact     = flag.String("artifact", "", "merge the soak section into this BENCH_dsud.json (created fresh when absent)")
		debugAddr    = flag.String("debug-addr", "", "serve /metrics, /vars, /slostatusz, /queryz and /debug/pprof/ here during the run")
		queryzRetain = flag.Int("queryz-retain", 0, "delivery-curve digests retained for /queryz (0 = default of 64)")
		flightDir    = flag.String("flight-dir", "", "directory for flight-recorder dumps on sustained SLO breach")
		quiet        = flag.Bool("quiet", false, "suppress per-iteration progress lines")
	)
	flag.Parse()

	if err := experiments.ValidateProfile(*profile); err != nil {
		fmt.Fprintf(os.Stderr, "dsud-loadgen: %v\n", err)
		return 2
	}
	var algorithm dsq.Algorithm
	switch *algo {
	case "dsud":
		algorithm = dsq.DSUD
	case "edsud":
		algorithm = dsq.EDSUD
	default:
		fmt.Fprintf(os.Stderr, "dsud-loadgen: unknown algorithm %q (want dsud or edsud)\n", *algo)
		return 2
	}
	if *mode != "protocol" && *mode != "materialized" {
		fmt.Fprintf(os.Stderr, "dsud-loadgen: unknown mode %q (want protocol or materialized)\n", *mode)
		return 2
	}
	if (*addrs == "") == !*selfHost {
		fmt.Fprintf(os.Stderr, "dsud-loadgen: need exactly one of -addrs or -self-host\n")
		flag.Usage()
		return 2
	}

	siteAddrs := strings.Split(*addrs, ",")
	if *selfHost {
		var stop func()
		var err error
		siteAddrs, stop, err = experiments.StartLocalSites(*n, *sites, *genSeed, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsud-loadgen: self-host: %v\n", err)
			return 1
		}
		defer stop()
		*dims = experiments.DefaultDims
		if !*quiet {
			fmt.Printf("dsud-loadgen: self-hosting %d loopback sites (%d tuples)\n", *sites, *n)
		}
	}

	cluster, err := dsq.Connect(dsq.ClusterConfig{Addrs: siteAddrs, Dims: *dims})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsud-loadgen: connect: %v\n", err)
		return 1
	}
	defer cluster.Close()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	// Instrumentation: the scheduled-arrival window (what a caller feels
	// under load, queueing included), the service window (cluster-side
	// elapsed, what the coordinator worked), and time-to-first-result.
	reg := dsq.NewMetrics()
	sched := obs.NewWindow(obs.DefWindowWidth)
	service := obs.NewWindow(obs.DefWindowWidth)
	first := obs.NewWindow(obs.DefWindowWidth)
	cluster.SetLatencyWindows(service, first)
	obs.ExposeWindow(reg, "dsud_loadgen_request_window_seconds", sched)
	obs.ExposeWindow(reg, "dsud_loadgen_service_window_seconds", service)
	obs.ExposeWindow(reg, "dsud_loadgen_ttfr_window_seconds", first)
	requests := reg.Counter("dsud_loadgen_requests_total")
	failures := reg.Counter("dsud_loadgen_failures_total")

	fr := dsq.NewFlightRecorder(0)
	if *flightDir != "" {
		fr.SetDumpDir(*flightDir)
	}
	cluster.SetFlightRecorder(fr)
	plog := dsq.NewProgressLog(*queryzRetain)
	cluster.SetProgressLog(plog)

	// With a maintenance mix, the §5.4 update path gets its own latency
	// window and dsud_update_* counters alongside the query windows.
	var updWindow *obs.Window
	if *updFrac > 0 {
		updWindow = obs.NewWindow(obs.DefWindowWidth)
		obs.ExposeWindow(reg, "dsud_update_latency_seconds", updWindow)
	}

	// -mode materialized warms a coordinator-side serving tier once and
	// answers every query from its sorted prefix; the update stream (if
	// any) flows through the same tier so reads stay exact.
	var server *dsq.Server
	if *mode == "materialized" {
		server, err = cluster.Serve(ctx, dsq.ServeConfig{Floor: *threshold, Algorithm: algorithm, Metrics: reg})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsud-loadgen: serve: %v\n", err)
			return 1
		}
		if !*quiet {
			st := server.Stats()
			fmt.Printf("dsud-loadgen: materialized tier warm: %d entries at floor %g\n", st.Entries, st.Floor)
		}
	}

	var objectives []slo.Objective
	if *sloP99 > 0 {
		objectives = append(objectives, slo.Latency("query_p99", sched, 0.99, *sloP99))
	}
	if *sloErrRate > 0 {
		objectives = append(objectives, slo.ErrorRate("error_rate", requests.Value, failures.Value, *sloErrRate))
	}
	if *sloTTFR > 0 {
		objectives = append(objectives, slo.Latency("ttfr_p95", first, 0.95, *sloTTFR))
	}
	mon := slo.New(objectives...)
	mon.Instrument(reg)
	mon.OnSustainedBreach(func(name string) {
		fmt.Fprintf(os.Stderr, "dsud-loadgen: SLO %q in sustained breach\n", name)
		if *flightDir != "" {
			if path, err := fr.Dump("slo-breach-" + name); err != nil {
				fmt.Fprintf(os.Stderr, "dsud-loadgen: flight dump: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "dsud-loadgen: flight dump -> %s\n", path)
			}
		}
	})

	if *debugAddr != "" {
		extras := map[string]http.Handler{
			"/slostatusz":    mon.Handler(),
			"/debug/flightz": fr.Handler(),
			"/queryz":        plog.Handler(),
		}
		if server != nil {
			extras["/servez"] = server.Handler()
		}
		mux := obs.DebugMux(reg, extras)
		lis, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsud-loadgen: debug listen: %v\n", err)
			return 1
		}
		fmt.Printf("dsud-loadgen: debug endpoint on http://%s/slostatusz\n", lis.Addr())
		go http.Serve(lis, mux)
	}

	var auditor *dsq.Auditor
	if *auditFrac > 0 {
		auditor = dsq.NewAuditor(dsq.AuditConfig{Fraction: *auditFrac}, reg)
	}

	if len(objectives) > 0 {
		go mon.Run(ctx, *sloEvery)
	}

	opts := experiments.SoakOptions{
		RPS:            *rps,
		Duration:       *duration,
		Iterations:     *iters,
		Workers:        *workers,
		Deadline:       *deadline,
		Threshold:      *threshold,
		Algorithm:      algorithm,
		UpdateFraction: *updFrac,
		Profile:        *profile,
		BurstFactor:    *burstF,
		BurstPeriod:    *burstP,
		Seed:           *seed,
		Window:         sched,
		UpdateWindow:   updWindow,
		UpdateMetrics:  reg,
		Auditor:        auditor,
		Requests:       requests,
		Failures:       failures,
	}
	if server != nil {
		opts.Server = server
		opts.Mode = dsq.ModeMaterialized
	}
	if *sloTTFR > 0 {
		opts.FirstWindow = first
	}
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dsud-loadgen: "+format+"\n", args...)
		}
	}

	res, err := experiments.Soak(ctx, cluster, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsud-loadgen: %v\n", err)
		return 1
	}

	writeSummary(os.Stdout, res)
	if server != nil {
		st := server.Stats()
		fmt.Printf("serving: %d hits, %d misses, %d refreshes, %d coalesced (%d entries, version %d)\n",
			st.Hits, st.Misses, st.Refreshes, st.Coalesced, st.Entries, st.Version)
	}
	status := 0

	if len(objectives) > 0 {
		statuses := mon.Evaluate()
		fmt.Println()
		slo.WriteText(os.Stdout, statuses)
		if *sloStrict {
			for _, st := range statuses {
				if st.Breached {
					fmt.Fprintf(os.Stderr, "dsud-loadgen: SLO %q breached at final evaluation (-slo-strict)\n", st.Name)
					status = 1
				}
			}
		}
	}

	if res.ErrorRate() > *maxErrorRate {
		fmt.Fprintf(os.Stderr, "dsud-loadgen: error rate %.3f%% exceeds -max-error-rate %.3f%%\n",
			res.ErrorRate()*100, *maxErrorRate*100)
		status = 1
	}
	if auditor != nil {
		fmt.Printf("audit: %d sampled, %d violation(s)\n", auditor.Audited(), auditor.Violations())
		if auditor.Violations() > 0 {
			fmt.Fprintf(os.Stderr, "dsud-loadgen: online audit found invariant violations under load\n")
			return 3
		}
	}

	if *artifact != "" {
		if err := mergeArtifact(*artifact, res, *n, *dims, *sites, *threshold, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "dsud-loadgen: artifact: %v\n", err)
			return 1
		}
		fmt.Printf("soak section merged into %s\n", *artifact)
	}
	return status
}

// writeSummary renders the human-readable result block.
func writeSummary(w *os.File, res *perf.SoakResult) {
	ok := res.Requests - res.Errors - res.Deadline
	fmt.Fprintf(w, "soak: %s profile, %.0f rps target, %d iteration(s) x %.1fs, %d workers\n",
		res.Profile, res.TargetRPS, res.Iterations, res.DurationSeconds, res.Workers)
	fmt.Fprintf(w, "outcomes: %d ok, %d error, %d deadline (%.3f%% error rate)\n",
		ok, res.Errors, res.Deadline, res.ErrorRate()*100)
	fmt.Fprintf(w, "throughput: %.1f q/s median (CV %.2f)\n", res.ThroughputQPS.Median, res.ThroughputQPS.CV)
	for _, key := range perf.SoakPercentiles() {
		d := res.Percentile(key)
		fmt.Fprintf(w, "latency %s: %.2fms median over %d iteration(s) (min %.2f, max %.2f)\n",
			key, d.Median, d.N, d.Min, d.Max)
	}
}

// mergeArtifact folds the soak section into an existing schema-v1
// BENCH_dsud.json (preserving its algorithm and throughput sections), or
// writes a fresh soak-only artifact when the file does not exist.
func mergeArtifact(path string, res *perf.SoakResult, n, dims, sites int, threshold float64, seed int64) error {
	var a *perf.Artifact
	if _, err := os.Stat(path); err == nil {
		a, err = perf.ReadArtifactFile(path)
		if err != nil {
			return err
		}
	} else {
		a = &perf.Artifact{
			Schema: perf.SchemaVersion,
			Env:    perf.Fingerprint(),
			Config: perf.RunConfig{
				N: n, Dims: dims, Sites: sites, Threshold: threshold,
				Seed: seed, Transport: "tcp-mux", Iterations: res.Iterations,
			},
		}
	}
	a.Soak = res
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := a.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
