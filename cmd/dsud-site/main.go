// Command dsud-site runs one local site of the distributed skyline system
// as a TCP daemon: it loads a partition produced by dsud-gen, indexes it in
// a PR-tree, and serves the DSUD wire protocol until interrupted.
//
// Usage:
//
//	dsud-site -data /tmp/parts/site-0.dsud -addr 127.0.0.1:7101 -id 0
//
// With -debug-addr the daemon additionally serves /metrics (Prometheus),
// /vars (JSON), /healthz, /status and /debug/pprof/ on that address.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/site"
	"repro/internal/transport"
)

func main() {
	var (
		data      = flag.String("data", "", "partition file written by dsud-gen (required)")
		addr      = flag.String("addr", "127.0.0.1:0", "listen address")
		httpAddr  = flag.String("http", "", "optional ops address serving GET /status as JSON")
		debugAddr = flag.String("debug-addr", "", "optional debug address serving /metrics, /vars, /healthz, /status and /debug/pprof/")
		id        = flag.Int("id", 0, "site index (diagnostics only)")
		logLevel  = flag.String("log-level", "", "structured log level: debug|info|warn|error (empty = logging off)")
		logFormat = flag.String("log-format", "text", "structured log format: text|json")
		slowReq   = flag.Duration("slow-request", 0, "log requests at least this slow at Warn (0 = off; needs -log-level)")
	)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}

	part, dims, err := dataset.Load(*data)
	if err != nil {
		fatalf("%v", err)
	}
	eng := site.New(*id, part, dims, 0)

	if *logLevel != "" {
		level, err := obs.ParseLogLevel(*logLevel)
		if err != nil {
			fatalf("%v", err)
		}
		logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
		if err != nil {
			fatalf("%v", err)
		}
		eng.SetLogger(logger.With("site", *id), *slowReq)
	}

	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		eng.Instrument(reg)
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen: %v", err)
	}
	srv := transport.NewServer(eng, nil)
	fmt.Printf("dsud-site %d serving %d tuples (%d dims) on %s\n", *id, len(part), dims, lis.Addr())

	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/status", eng.StatusHandler())
		opsLis, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatalf("ops listen: %v", err)
		}
		fmt.Printf("dsud-site %d ops endpoint on http://%s/status\n", *id, opsLis.Addr())
		go http.Serve(opsLis, mux)
	}

	if *debugAddr != "" {
		mux := obs.DebugMux(reg, map[string]http.Handler{"/status": eng.StatusHandler()})
		dbgLis, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatalf("debug listen: %v", err)
		}
		fmt.Printf("dsud-site %d debug endpoint on http://%s/metrics\n", *id, dbgLis.Addr())
		go http.Serve(dbgLis, mux)
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)
	select {
	case <-interrupt:
		fmt.Println("dsud-site: shutting down")
		srv.Close()
		<-done
	case err := <-done:
		if err != nil {
			fatalf("serve: %v", err)
		}
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dsud-site: "+format+"\n", args...)
	os.Exit(1)
}
