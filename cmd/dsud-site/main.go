// Command dsud-site runs one local site of the distributed skyline system
// as a TCP daemon: it loads a partition produced by dsud-gen, indexes it in
// a PR-tree, and serves the DSUD wire protocol until interrupted.
//
// Usage:
//
//	dsud-site -data /tmp/parts/site-0.dsud -addr 127.0.0.1:7101 -id 0
//
// With -http the daemon serves /healthz, /statusz (alias /status) and
// /debug/flightz on an ops address; with -debug-addr it additionally
// serves /metrics (Prometheus), /vars (JSON) and /debug/pprof/ there. On
// SIGINT/SIGTERM it stops accepting requests, drains in-flight queries
// for -drain, and (with -flight-dir) writes a final flight-recorder dump
// and metrics snapshot before exiting.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/slo"
	"repro/internal/site"
	"repro/internal/transport"
)

func main() {
	var (
		data       = flag.String("data", "", "partition file written by dsud-gen (required)")
		addr       = flag.String("addr", "127.0.0.1:0", "listen address")
		httpAddr   = flag.String("http", "", "optional ops address serving GET /healthz, /statusz and /debug/flightz")
		debugAddr  = flag.String("debug-addr", "", "optional debug address serving /metrics, /vars, /healthz, /statusz, /debug/flightz and /debug/pprof/")
		id         = flag.Int("id", 0, "site index (diagnostics only)")
		logLevel   = flag.String("log-level", "", "structured log level: debug|info|warn|error (empty = logging off)")
		logFormat  = flag.String("log-format", "text", "structured log format: text|json")
		slowReq    = flag.Duration("slow-request", 0, "log requests at least this slow at Warn (0 = off; needs -log-level)")
		flightDir  = flag.String("flight-dir", "", "directory for flight-recorder dumps (slow queries, audit failures, shutdown)")
		flightSize = flag.Int("flight-size", flight.DefaultSize, "flight-recorder ring capacity in query records")
		drain      = flag.Duration("drain", 10*time.Second, "how long shutdown waits for in-flight requests before closing hard")
		conc       = flag.Int("concurrency", transport.DefaultWorkerLimit, "max requests served concurrently per multiplexed (wire v2) connection")
		legacyWire = flag.Bool("legacy-wire", false, "refuse the multiplexed wire protocol and serve every client over the v1 gob stream (emulates a pre-mux daemon)")
		sloP99     = flag.Duration("slo-p99", 0, "SLO: windowed p99 request latency must stay under this; serves /slostatusz and dumps the flight recorder on sustained breach (0 = off)")
		sloEvery   = flag.Duration("slo-interval", 10*time.Second, "SLO evaluation cadence (needs -slo-p99)")
	)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}

	part, dims, err := dataset.Load(*data)
	if err != nil {
		fatalf("%v", err)
	}
	eng := site.New(*id, part, dims, 0)

	// The flight recorder is always on — it is the post-hoc witness for
	// "what was this site doing just before things went wrong".
	fr := flight.New(*flightSize)
	if *flightDir != "" {
		fr.SetDumpDir(*flightDir)
	}
	eng.SetFlightRecorder(fr)

	if *logLevel != "" {
		level, err := obs.ParseLogLevel(*logLevel)
		if err != nil {
			fatalf("%v", err)
		}
		logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
		if err != nil {
			fatalf("%v", err)
		}
		eng.SetLogger(logger.With("site", *id), *slowReq)
	}

	// Always instrumented so the shutdown snapshot exists even without a
	// debug listener; serving the registry stays opt-in via -debug-addr.
	reg := obs.NewRegistry()
	eng.Instrument(reg)

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen: %v", err)
	}
	srv := transport.NewServer(eng, nil)
	if *conc > 0 {
		srv.SetWorkerLimit(*conc)
	}
	srv.SetLegacyOnly(*legacyWire)
	// Wire-level frame accounting: every v2 mux frame in or out bumps
	// dsud_site_frames_total / dsud_site_frame_bytes_total broken down by
	// direction and frame type. Counters are pre-registered per type so
	// the per-frame tap is an array index and two atomic adds. (Frame
	// payloads are not captured here — the gob streams are stateful per
	// connection; transcript capture happens at the coordinator.)
	type frameCtr struct{ frames, bytes *obs.Counter }
	frameCtrs := func(dir string) [8]frameCtr {
		var c [8]frameCtr
		for t := 0; t < len(c); t++ {
			name := codec.FrameType(t).String()
			if t == 0 || t > 5 {
				name = "other"
			}
			c[t] = frameCtr{
				frames: reg.Counter("dsud_site_frames_total", "site", fmt.Sprint(*id), "dir", dir, "type", name),
				bytes:  reg.Counter("dsud_site_frame_bytes_total", "site", fmt.Sprint(*id), "dir", dir, "type", name),
			}
		}
		return c
	}
	inCtrs, outCtrs := frameCtrs("in"), frameCtrs("out")
	srv.SetFrameTap(func(dir uint8, t codec.FrameType, n int) {
		ctrs := &inCtrs
		if dir == transport.TapOutbound {
			ctrs = &outCtrs
		}
		i := int(t)
		if i <= 0 || i > 5 {
			i = 0
		}
		ctrs[i].frames.Inc()
		ctrs[i].bytes.Add(int64(n))
	})
	// Surface mux worker-pool saturation in /statusz and the windowed
	// request-latency quantiles (p50/p95/p99 over the last ~10-20s) in
	// /metrics — the live feed dsud-top renders.
	eng.SetWorkerStats(srv.WorkerStats)
	obs.ExposeWindow(reg, "dsud_site_request_window_seconds", eng.Window(), "site", fmt.Sprint(*id))
	// Telemetry push plane: wire-v2 coordinators subscribe and receive one
	// snapshot per interval; /statusz reports the publisher's own counters
	// so operators can see who is listening and when the last push went out.
	srv.SetTelemetrySource(eng)
	eng.SetTelemetryStats(srv.TelemetryStats)
	fmt.Printf("dsud-site %d serving %d tuples (%d dims) on %s\n", *id, len(part), dims, lis.Addr())

	// Declarative site-level SLO over the windowed request latency:
	// evaluated in the background, served at /slostatusz, and a sustained
	// breach leaves a flight-recorder dump behind (with -flight-dir).
	var mon *slo.Monitor
	if *sloP99 > 0 {
		mon = slo.New(slo.Latency("request_p99", eng.Window(), 0.99, *sloP99))
		mon.Instrument(reg)
		eng.SetSLOMonitor(mon) // pushed telemetry carries the cached SLO state
		mon.OnSustainedBreach(func(name string) {
			fmt.Fprintf(os.Stderr, "dsud-site %d: SLO %q in sustained breach\n", *id, name)
			if *flightDir != "" {
				if path, err := fr.Dump("slo-breach-" + name); err != nil {
					fmt.Fprintf(os.Stderr, "dsud-site %d: flight dump: %v\n", *id, err)
				} else {
					fmt.Fprintf(os.Stderr, "dsud-site %d: flight dump -> %s\n", *id, path)
				}
			}
		})
		go mon.Run(context.Background(), *sloEvery)
	}

	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/status", eng.StatusHandler()) // back-compat alias of /statusz
		mux.Handle("/statusz", eng.StatusHandler())
		mux.Handle("/healthz", healthzHandler())
		mux.Handle("/debug/flightz", fr.Handler())
		if mon != nil {
			mux.Handle("/slostatusz", mon.Handler())
		}
		opsLis, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatalf("ops listen: %v", err)
		}
		fmt.Printf("dsud-site %d ops endpoint on http://%s/statusz\n", *id, opsLis.Addr())
		go http.Serve(opsLis, mux)
	}

	if *debugAddr != "" {
		extra := map[string]http.Handler{
			"/status":        eng.StatusHandler(), // back-compat alias of /statusz
			"/statusz":       eng.StatusHandler(),
			"/debug/flightz": fr.Handler(),
		}
		if mon != nil {
			extra["/slostatusz"] = mon.Handler()
		}
		mux := obs.DebugMux(reg, extra)
		dbgLis, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatalf("debug listen: %v", err)
		}
		fmt.Printf("dsud-site %d debug endpoint on http://%s/metrics\n", *id, dbgLis.Addr())
		go http.Serve(dbgLis, mux)
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt, syscall.SIGTERM)
	select {
	case <-interrupt:
		fmt.Printf("dsud-site %d: draining in-flight requests (up to %v)\n", *id, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		err := srv.Shutdown(ctx)
		cancel()
		<-done
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsud-site %d: shutdown: %v\n", *id, err)
		}
		finalSnapshot(fr, reg, *flightDir, *id)
	case err := <-done:
		if err != nil {
			fatalf("serve: %v", err)
		}
	}
}

// finalSnapshot writes the shutdown flight dump and a metrics snapshot
// into dir, the operator's last view of the process. Best-effort: a
// failed write is reported, not fatal — the process is exiting anyway.
func finalSnapshot(fr *flight.Recorder, reg *obs.Registry, dir string, id int) {
	if dir == "" {
		return
	}
	if path, err := fr.Dump("shutdown"); err != nil {
		fmt.Fprintf(os.Stderr, "dsud-site %d: flight dump: %v\n", id, err)
	} else {
		fmt.Printf("dsud-site %d: flight dump -> %s\n", id, path)
	}
	path := filepath.Join(dir, fmt.Sprintf("metrics-site%d-%d.json", id, time.Now().UnixNano()))
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsud-site %d: metrics snapshot: %v\n", id, err)
		return
	}
	if err := reg.WriteJSON(f); err != nil {
		fmt.Fprintf(os.Stderr, "dsud-site %d: metrics snapshot: %v\n", id, err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "dsud-site %d: metrics snapshot: %v\n", id, err)
		return
	}
	fmt.Printf("dsud-site %d: metrics snapshot -> %s\n", id, path)
}

// healthzHandler is the ops-mux liveness probe, matching the debug mux's
// /healthz contract: GET/HEAD only, application/json.
func healthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	})
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dsud-site: "+format+"\n", args...)
	os.Exit(1)
}
