// Command dsud-query runs a distributed skyline query as the coordinator
// H against running dsud-site daemons, printing qualified tuples as they
// are discovered (progressively) and the communication statistics at the
// end.
//
// Usage:
//
//	dsud-query -addrs 127.0.0.1:7101,127.0.0.1:7102 -dims 3 -q 0.3 -algo edsud
//
// With -cluster-status it instead probes every site's health and prints
// one row per site (including each site's telemetry last-push age). With
// -watch it runs as a long-lived telemetry coordinator: every site's
// pushed telemetry stream feeds a time-series store served at /clusterz
// (and as a Prometheus federation view) on -debug-addr — the endpoint
// dsud-top -cluster reads. With -audit-fraction the completed query is
// re-checked against exact oracles at that sampling rate, and with
// -flight-dir the coordinator's flight recorder is dumped on exit (and
// automatically on slow queries or audit violations). With -explain the
// finished query is rendered as an explain report: per-site
// contribution, per-phase timing and the ASCII delivery timeline backing
// the /queryz digest.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/dsq"
	"repro/internal/obs"
)

func main() {
	var (
		addrs   = flag.String("addrs", "", "comma-separated site addresses (required)")
		dims    = flag.Int("dims", 0, "data dimensionality (required unless -cluster-status)")
		q       = flag.Float64("q", 0.3, "probability threshold in (0,1]")
		algo    = flag.String("algo", "edsud", "algorithm: baseline|dsud|edsud")
		sub     = flag.String("subspace", "", "comma-separated dimension indices (empty = full space)")
		quiet   = flag.Bool("quiet", false, "suppress per-tuple output")
		mode    = flag.String("mode", "protocol", "answer mode: protocol|materialized|auto (non-protocol modes warm a materialized serving tier first; see docs/SERVING.md)")
		floor   = flag.Float64("serve-floor", 0, "materialization floor threshold for -mode materialized|auto (0 = use -q)")
		topk    = flag.Int("topk", 0, "return only the K most probable answers (0 = all)")
		trace   = flag.Bool("trace", false, "print every protocol step")
		stats   = flag.Bool("stats", false, "print the per-phase timing table after the query")
		explain = flag.Bool("explain", false, "render the per-query explain report after the query: per-site contribution, phase breakdown and the ASCII delivery timeline")

		clusterStatus = flag.Bool("cluster-status", false, "probe every site's health over the wire, print a status table and exit")
		watch         = flag.Bool("watch", false, "run as a telemetry coordinator: subscribe to every site's pushed telemetry and serve /clusterz plus the cluster federation view on -debug-addr until interrupted (no query runs)")
		telemetryInt  = flag.Duration("telemetry-interval", 0, "push cadence requested from the sites in -watch mode (0 = 1s default)")
		auditFraction = flag.Float64("audit-fraction", 0, "fraction of completed queries re-checked against exact oracles (0 = off, 1 = every query)")
		auditMC       = flag.Int("audit-mc-samples", 0, "Monte-Carlo possible worlds per audited query (0 = exact checks only)")
		flightDir     = flag.String("flight-dir", "", "directory for flight-recorder dumps (slow queries, audit violations, exit)")
		flightSize    = flag.Int("flight-size", 0, "flight-recorder ring capacity in query records (0 = default)")
		record        = flag.String("record", "", "directory for a black-box transcript of this query: every coordinator<->site message is captured into a replayable .dstr file (consume with dsud-replay)")
		queryzRetain  = flag.Int("queryz-retain", 0, "delivery-curve digests retained for /queryz (0 = default of 64)")

		debugAddr   = flag.String("debug-addr", "", "optional debug address serving /metrics, /vars, /healthz, /debug/flightz and /debug/pprof/")
		traceExport = flag.String("trace-export", "", "write the merged cross-site timeline as Chrome trace-event JSON to this file (load in Perfetto or chrome://tracing)")
		logLevel    = flag.String("log-level", "", "structured log level: debug|info|warn|error (empty = logging off)")
		logFormat   = flag.String("log-format", "text", "structured log format: text|json")
		slowQuery   = flag.Duration("slow-query", 0, "log queries at least this slow at Warn with a phase breakdown (0 = off; needs -log-level)")
	)
	flag.Parse()
	if *addrs == "" || (!*clusterStatus && !*watch && *dims <= 0) {
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *watch {
		if *debugAddr == "" {
			fatalf("-watch needs -debug-addr to serve /clusterz")
		}
		if err := watchCluster(ctx, *addrs, *dims, *debugAddr, *telemetryInt, *logLevel, *logFormat); err != nil {
			fatalf("%v", err)
		}
		return
	}

	if *clusterStatus {
		// Status probes don't need the data dimensionality; any positive
		// value satisfies the cluster constructor.
		d := *dims
		if d <= 0 {
			d = 1
		}
		cluster, err := dsq.Connect(dsq.ClusterConfig{Addrs: strings.Split(*addrs, ","), Dims: d})
		if err != nil {
			fatalf("%v", err)
		}
		defer cluster.Close()
		healths := cluster.Health(ctx)
		healthy := dsq.WriteClusterStatus(os.Stdout, healths, time.Now())
		if healthy < len(healths) {
			os.Exit(1)
		}
		return
	}

	var algorithm dsq.Algorithm
	switch *algo {
	case "baseline":
		algorithm = dsq.Baseline
	case "dsud":
		algorithm = dsq.DSUD
	case "edsud":
		algorithm = dsq.EDSUD
	default:
		fatalf("unknown algorithm %q", *algo)
	}

	var subspace []int
	if *sub != "" {
		for _, part := range strings.Split(*sub, ",") {
			var j int
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &j); err != nil {
				fatalf("bad subspace index %q", part)
			}
			subspace = append(subspace, j)
		}
	}

	// The coordinator-side flight recorder is always on; -flight-dir
	// additionally enables dumps (slow queries, audit violations, exit).
	fr := dsq.NewFlightRecorder(*flightSize)
	if *flightDir != "" {
		fr.SetDumpDir(*flightDir)
	}
	reg := dsq.NewMetrics()
	plog := dsq.NewProgressLog(*queryzRetain)
	var tlog *dsq.TranscriptLog
	if *record != "" {
		tlog = dsq.NewTranscriptLog(0)
	}

	cluster, err := dsq.Connect(dsq.ClusterConfig{
		Addrs:          strings.Split(*addrs, ","),
		Dims:           *dims,
		Metrics:        reg,
		FlightRecorder: fr,
		ProgressLog:    plog,
		TranscriptDir:  *record,
		TranscriptLog:  tlog,
	})
	if err != nil {
		fatalf("%v", err)
	}
	defer cluster.Close()

	var queryMode dsq.Mode
	switch *mode {
	case "protocol":
		queryMode = dsq.ModeProtocol
	case "materialized":
		queryMode = dsq.ModeMaterialized
	case "auto":
		queryMode = dsq.ModeAuto
	default:
		fatalf("unknown mode %q", *mode)
	}
	var server *dsq.Server
	if queryMode != dsq.ModeProtocol {
		// Warm the materialized tier with one protocol round at the floor
		// threshold; the query below is then a sorted-prefix read.
		f := *floor
		if f == 0 {
			f = *q
		}
		server, err = cluster.Serve(ctx, dsq.ServeConfig{
			Floor:     f,
			Dims:      subspace,
			Algorithm: algorithm,
			Metrics:   reg,
		})
		if err != nil {
			fatalf("serve: %v", err)
		}
	}

	if *debugAddr != "" {
		lis, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatalf("debug listen: %v", err)
		}
		fmt.Printf("debug endpoint on http://%s/metrics\n", lis.Addr())
		extras := map[string]http.Handler{
			"/debug/flightz": fr.Handler(),
			"/queryz":        plog.Handler(),
		}
		if tlog != nil {
			extras["/transcriptz"] = tlog.Handler()
		}
		if server != nil {
			extras["/servez"] = server.Handler()
		}
		go http.Serve(lis, obs.DebugMux(reg, extras))
	}

	opts := dsq.Options{Threshold: *q, Dims: subspace, Algorithm: algorithm, TopK: *topk, Mode: queryMode}
	if *logLevel != "" {
		level, err := dsq.ParseLogLevel(*logLevel)
		if err != nil {
			fatalf("%v", err)
		}
		logger, err := dsq.NewLogger(os.Stderr, *logFormat, level)
		if err != nil {
			fatalf("%v", err)
		}
		opts.Logger = logger
		opts.SlowQuery = *slowQuery
	}
	if *traceExport != "" || *auditFraction > 0 || *explain || *record != "" {
		// A caller-owned trace turns on sampling: every RPC carries the
		// trace context and the sites' spans come back for the timeline.
		// The auditor also needs it, for the query_id on its log records,
		// -explain for its phase breakdown and cross-links, and -record
		// for the query_id in the transcript header (the key that joins
		// a .dstr file to /queryz and /debug/flightz).
		opts.Trace = dsq.NewTrace()
	}
	if *record != "" {
		opts.Record = true
	}
	if *trace {
		opts.OnEvent = func(e dsq.Event) { fmt.Println(e) }
	}
	if !*quiet {
		opts.OnResult = func(res dsq.Result) {
			fmt.Printf("skyline %s  P=%.4f  (site %d)\n", res.Tuple.Point, res.GlobalProb, res.Site)
		}
	}
	var (
		report *dsq.Report
		qstats *dsq.QueryStats
	)
	if server != nil {
		report, qstats, err = server.QueryWithStats(ctx, opts)
	} else {
		report, qstats, err = cluster.QueryWithStats(ctx, opts)
	}
	if err != nil {
		finalSnapshot(fr, reg, *flightDir)
		fatalf("query: %v", err)
	}
	bw := report.Bandwidth
	fmt.Printf("\n%d skyline tuple(s) in %v via %v (source %s)\n",
		len(report.Skyline), report.Elapsed.Round(1e6), algorithm, report.Source)
	fmt.Printf("bandwidth: %d tuples (%d up, %d down), %d messages, %d wire bytes\n",
		bw.Tuples(), bw.TuplesUp, bw.TuplesDown, bw.Messages, bw.Bytes)
	fmt.Printf("iterations: %d, broadcasts: %d, expunged: %d, locally pruned: %d\n",
		report.Iterations, report.Broadcasts, report.Expunged, report.PrunedLocal)
	if server != nil {
		st := server.Stats()
		fmt.Printf("serving: %d materialized entries at floor %g, hits=%d misses=%d refreshes=%d coalesced=%d\n",
			st.Entries, st.Floor, st.Hits, st.Misses, st.Refreshes, st.Coalesced)
	}
	if tlog != nil {
		if entries := tlog.Snapshot(); len(entries) > 0 {
			last := entries[len(entries)-1]
			if last.Error != "" {
				fmt.Fprintf(os.Stderr, "dsud-query: transcript not recorded: %s\n", last.Error)
			} else {
				fmt.Printf("transcript: %s (%d messages, %d bytes) — replay with: dsud-replay %s\n",
					last.Path, last.Messages, last.Bytes, last.Path)
			}
		}
	}
	if *stats {
		fmt.Println()
		if err := qstats.Trace.WriteTable(os.Stdout); err != nil {
			fatalf("stats: %v", err)
		}
	}
	if *explain {
		fmt.Println()
		if err := dsq.WriteExplain(os.Stdout, report, qstats); err != nil {
			fatalf("explain: %v", err)
		}
	}
	if *traceExport != "" {
		f, err := os.Create(*traceExport)
		if err != nil {
			fatalf("trace export: %v", err)
		}
		if err := qstats.Trace.WriteChromeTrace(f); err != nil {
			f.Close()
			fatalf("trace export: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("trace export: %v", err)
		}
		fmt.Printf("trace %s: %d spans (%d from sites) -> %s\n",
			dsq.QueryID(qstats.Trace.TraceID), len(qstats.Trace.Timeline), qstats.Trace.SiteSpans(), *traceExport)
	}

	auditFailed := false
	if *auditFraction > 0 {
		auditor := dsq.NewAuditor(dsq.AuditConfig{
			Fraction:  *auditFraction,
			MCSamples: *auditMC,
			Logger:    opts.Logger,
			Flight:    fr,
		}, reg)
		outcome, err := auditor.MaybeAudit(ctx, cluster, opts, report)
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "dsud-query: audit could not run: %v\n", err)
		case outcome == nil:
			// Not sampled this time.
		case outcome.Clean():
			fmt.Printf("audit %s: clean (%d checks, %d skipped)\n",
				outcome.QueryID, outcome.Checks, outcome.SkippedChecks)
		default:
			auditFailed = true
			fmt.Fprintf(os.Stderr, "audit %s: %d VIOLATION(S) in %d checks:\n",
				outcome.QueryID, len(outcome.Violations), outcome.Checks)
			for _, v := range outcome.Violations {
				fmt.Fprintf(os.Stderr, "  %s\n", v)
			}
		}
	}
	finalSnapshot(fr, reg, *flightDir)
	if auditFailed {
		os.Exit(1)
	}
}

// finalSnapshot writes an exit flight dump and metrics snapshot into dir
// (no-op when -flight-dir is unset). Best-effort.
func finalSnapshot(fr *dsq.FlightRecorder, reg *dsq.Metrics, dir string) {
	if dir == "" {
		return
	}
	if path, err := fr.Dump("exit"); err != nil {
		fmt.Fprintf(os.Stderr, "dsud-query: flight dump: %v\n", err)
	} else {
		fmt.Printf("flight dump -> %s\n", path)
	}
	path := filepath.Join(dir, fmt.Sprintf("metrics-query-%d.json", time.Now().UnixNano()))
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsud-query: metrics snapshot: %v\n", err)
		return
	}
	if err := reg.WriteJSON(f); err != nil {
		fmt.Fprintf(os.Stderr, "dsud-query: metrics snapshot: %v\n", err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "dsud-query: metrics snapshot: %v\n", err)
		return
	}
	fmt.Printf("metrics snapshot -> %s\n", path)
}

// watchCluster is the -watch serve mode: the coordinator as the cluster's
// telemetry aggregation point. It subscribes to every site's pushed
// telemetry stream (wire v2), retains recent history in the time-series
// store, and serves /clusterz (JSON and ?format=text), the federation
// /metrics view and the usual debug endpoints until ctx is cancelled.
func watchCluster(ctx context.Context, addrs string, dims int, debugAddr string, interval time.Duration, logLevel, logFormat string) error {
	d := dims
	if d <= 0 {
		d = 1 // telemetry never ships tuples; any positive dims satisfies the constructor
	}
	reg := dsq.NewMetrics()
	cluster, err := dsq.Connect(dsq.ClusterConfig{
		Addrs:   strings.Split(addrs, ","),
		Dims:    d,
		Metrics: reg,
		// Redialling transport: a site restart only costs the staleness
		// window, not the subscription.
		RetryAttempts: 3,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	cfg := dsq.TelemetryConfig{Interval: interval}
	if logLevel != "" {
		level, err := dsq.ParseLogLevel(logLevel)
		if err != nil {
			return err
		}
		logger, err := dsq.NewLogger(os.Stderr, logFormat, level)
		if err != nil {
			return err
		}
		cfg.Logger = logger
	}
	ct, err := cluster.StartTelemetry(ctx, cfg)
	if err != nil {
		return err
	}
	defer ct.Stop()
	ct.Expose(reg)

	lis, err := net.Listen("tcp", debugAddr)
	if err != nil {
		return fmt.Errorf("debug listen: %w", err)
	}
	fmt.Printf("cluster telemetry on http://%s/clusterz (%d sites, push interval %v)\n",
		lis.Addr(), cluster.Sites(), ct.Interval())
	srv := &http.Server{Handler: obs.DebugMux(reg, map[string]http.Handler{
		"/clusterz": ct.Handler(),
	})}
	go func() {
		<-ctx.Done()
		srv.Close()
	}()
	if err := srv.Serve(lis); !errors.Is(err, http.ErrServerClosed) && ctx.Err() == nil {
		return err
	}
	return nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dsud-query: "+format+"\n", args...)
	os.Exit(1)
}
