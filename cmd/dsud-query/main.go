// Command dsud-query runs a distributed skyline query as the coordinator
// H against running dsud-site daemons, printing qualified tuples as they
// are discovered (progressively) and the communication statistics at the
// end.
//
// Usage:
//
//	dsud-query -addrs 127.0.0.1:7101,127.0.0.1:7102 -dims 3 -q 0.3 -algo edsud
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"

	"repro/dsq"
	"repro/internal/obs"
)

func main() {
	var (
		addrs = flag.String("addrs", "", "comma-separated site addresses (required)")
		dims  = flag.Int("dims", 0, "data dimensionality (required)")
		q     = flag.Float64("q", 0.3, "probability threshold in (0,1]")
		algo  = flag.String("algo", "edsud", "algorithm: baseline|dsud|edsud")
		sub   = flag.String("subspace", "", "comma-separated dimension indices (empty = full space)")
		quiet = flag.Bool("quiet", false, "suppress per-tuple output")
		topk  = flag.Int("topk", 0, "return only the K most probable answers (0 = all)")
		trace = flag.Bool("trace", false, "print every protocol step")
		stats = flag.Bool("stats", false, "print the per-phase timing table after the query")

		debugAddr   = flag.String("debug-addr", "", "optional debug address serving /metrics, /vars, /healthz and /debug/pprof/")
		traceExport = flag.String("trace-export", "", "write the merged cross-site timeline as Chrome trace-event JSON to this file (load in Perfetto or chrome://tracing)")
		logLevel    = flag.String("log-level", "", "structured log level: debug|info|warn|error (empty = logging off)")
		logFormat   = flag.String("log-format", "text", "structured log format: text|json")
		slowQuery   = flag.Duration("slow-query", 0, "log queries at least this slow at Warn with a phase breakdown (0 = off; needs -log-level)")
	)
	flag.Parse()
	if *addrs == "" || *dims <= 0 {
		flag.Usage()
		os.Exit(2)
	}

	var algorithm dsq.Algorithm
	switch *algo {
	case "baseline":
		algorithm = dsq.Baseline
	case "dsud":
		algorithm = dsq.DSUD
	case "edsud":
		algorithm = dsq.EDSUD
	default:
		fatalf("unknown algorithm %q", *algo)
	}

	var subspace []int
	if *sub != "" {
		for _, part := range strings.Split(*sub, ",") {
			var j int
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &j); err != nil {
				fatalf("bad subspace index %q", part)
			}
			subspace = append(subspace, j)
		}
	}

	cluster, err := dsq.NewRemoteCluster(strings.Split(*addrs, ","), *dims)
	if err != nil {
		fatalf("%v", err)
	}
	defer cluster.Close()

	if *debugAddr != "" {
		reg := dsq.NewMetrics()
		cluster.Instrument(reg)
		lis, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatalf("debug listen: %v", err)
		}
		fmt.Printf("debug endpoint on http://%s/metrics\n", lis.Addr())
		go http.Serve(lis, obs.DebugMux(reg, nil))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := dsq.Options{Threshold: *q, Dims: subspace, Algorithm: algorithm, TopK: *topk}
	if *logLevel != "" {
		level, err := dsq.ParseLogLevel(*logLevel)
		if err != nil {
			fatalf("%v", err)
		}
		logger, err := dsq.NewLogger(os.Stderr, *logFormat, level)
		if err != nil {
			fatalf("%v", err)
		}
		opts.Logger = logger
		opts.SlowQuery = *slowQuery
	}
	if *traceExport != "" {
		// A caller-owned trace turns on sampling: every RPC carries the
		// trace context and the sites' spans come back for the timeline.
		opts.Trace = dsq.NewTrace()
	}
	if *trace {
		opts.OnEvent = func(e dsq.Event) { fmt.Println(e) }
	}
	if !*quiet {
		opts.OnResult = func(res dsq.Result) {
			fmt.Printf("skyline %s  P=%.4f  (site %d)\n", res.Tuple.Point, res.GlobalProb, res.Site)
		}
	}
	report, qstats, err := dsq.QueryWithStats(ctx, cluster, opts)
	if err != nil {
		fatalf("query: %v", err)
	}
	bw := report.Bandwidth
	fmt.Printf("\n%d skyline tuple(s) in %v via %v\n", len(report.Skyline), report.Elapsed.Round(1e6), algorithm)
	fmt.Printf("bandwidth: %d tuples (%d up, %d down), %d messages, %d wire bytes\n",
		bw.Tuples(), bw.TuplesUp, bw.TuplesDown, bw.Messages, bw.Bytes)
	fmt.Printf("iterations: %d, broadcasts: %d, expunged: %d, locally pruned: %d\n",
		report.Iterations, report.Broadcasts, report.Expunged, report.PrunedLocal)
	if *stats {
		fmt.Println()
		if err := qstats.Trace.WriteTable(os.Stdout); err != nil {
			fatalf("stats: %v", err)
		}
	}
	if *traceExport != "" {
		f, err := os.Create(*traceExport)
		if err != nil {
			fatalf("trace export: %v", err)
		}
		if err := qstats.Trace.WriteChromeTrace(f); err != nil {
			f.Close()
			fatalf("trace export: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("trace export: %v", err)
		}
		fmt.Printf("trace %s: %d spans (%d from sites) -> %s\n",
			dsq.QueryID(qstats.Trace.TraceID), len(qstats.Trace.Timeline), qstats.Trace.SiteSpans(), *traceExport)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dsud-query: "+format+"\n", args...)
	os.Exit(1)
}
