// Command dsud-gen generates a synthetic uncertain database, partitions it
// over m sites, and writes one dataset file per site for dsud-site to
// serve.
//
// Usage:
//
//	dsud-gen -n 100000 -d 3 -m 4 -values anticorrelated -out /tmp/parts
//
// produces /tmp/parts/site-0.dsud … /tmp/parts/site-3.dsud.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/gen"
)

func main() {
	var (
		n      = flag.Int("n", 100_000, "global cardinality")
		d      = flag.Int("d", 3, "dimensionality (ignored for -values nyse)")
		m      = flag.Int("m", 4, "number of site partitions")
		values = flag.String("values", "independent", "value distribution: independent|anticorrelated|correlated|nyse")
		probs  = flag.String("probs", "uniform", "probability distribution: uniform|gaussian")
		mu     = flag.Float64("mu", 0.5, "gaussian probability mean")
		sigma  = flag.Float64("sigma", 0.2, "gaussian probability stddev")
		seed   = flag.Int64("seed", 1, "generation seed")
		out    = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	cfg := gen.Config{N: *n, Dims: *d, Seed: *seed, Mu: *mu, Sigma: *sigma}
	switch *values {
	case "independent":
		cfg.Values = gen.Independent
	case "anticorrelated":
		cfg.Values = gen.Anticorrelated
	case "correlated":
		cfg.Values = gen.Correlated
	case "nyse":
		cfg.Values = gen.NYSE
		cfg.Dims = 0
	default:
		fatalf("unknown value distribution %q", *values)
	}
	switch *probs {
	case "uniform":
		cfg.Probs = gen.UniformProb
	case "gaussian":
		cfg.Probs = gen.GaussianProb
	default:
		fatalf("unknown probability distribution %q", *probs)
	}

	db, err := gen.Generate(cfg)
	if err != nil {
		fatalf("generate: %v", err)
	}
	parts, err := gen.Partition(db, *m, *seed+1)
	if err != nil {
		fatalf("partition: %v", err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatalf("mkdir: %v", err)
	}
	dims := db.Dims()
	for i, part := range parts {
		path := filepath.Join(*out, fmt.Sprintf("site-%d.dsud", i))
		if err := dataset.Save(path, dims, part); err != nil {
			fatalf("save: %v", err)
		}
		fmt.Printf("wrote %s (%d tuples, %d dims)\n", path, len(part), dims)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dsud-gen: "+format+"\n", args...)
	os.Exit(1)
}
