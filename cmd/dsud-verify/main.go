// Command dsud-verify cross-checks every implementation of the skyline
// probability semantics against each other on a generated (or loaded)
// workload: the distributed engine (all algorithms), the centralized
// brute-force oracle, the PR-tree index, the vertical VDSUD algorithm,
// and the Monte Carlo world sampler. It is the operational counterpart of
// the test suite — run it after any change, or on a dataset that behaves
// suspiciously in production.
//
// Usage:
//
//	dsud-verify -n 2000 -d 3 -m 6 -q 0.3 [-values anticorrelated] [-samples 20000]
//	dsud-verify -data /tmp/parts/site-0.dsud -q 0.3
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/montecarlo"
	"repro/internal/prtree"
	"repro/internal/uncertain"
	"repro/internal/vertical"
)

func main() {
	var (
		data    = flag.String("data", "", "dataset file (optional; otherwise generate)")
		n       = flag.Int("n", 2000, "cardinality when generating")
		d       = flag.Int("d", 3, "dimensionality when generating")
		m       = flag.Int("m", 6, "site count for the distributed checks")
		q       = flag.Float64("q", 0.3, "probability threshold")
		values  = flag.String("values", "independent", "value distribution: independent|anticorrelated|correlated|nyse")
		samples = flag.Int("samples", 20_000, "Monte Carlo world samples (0 disables)")
		seed    = flag.Int64("seed", 1, "generation seed")
	)
	flag.Parse()

	db, dims := loadOrGenerate(*data, *n, *d, *values, *seed)
	fmt.Printf("verifying %d tuples (%d dims) at q=%v over %d sites\n\n", len(db), dims, *q, *m)

	failures := 0
	report := func(name string, ok bool, detail string) {
		status := "ok  "
		if !ok {
			status = "FAIL"
			failures++
		}
		fmt.Printf("  [%s] %-34s %s\n", status, name, detail)
	}

	// Reference answer: the O(N²) brute-force oracle.
	want := db.Skyline(*q, nil)
	fmt.Printf("reference (brute force): %d skyline tuples\n", len(want))

	// PR-tree index.
	tree := prtree.Bulk(db, dims, 0)
	treeAnswer := tree.LocalSkyline(*q, nil)
	report("PR-tree BBS search", uncertain.MembersEqual(treeAnswer, want, 1e-9),
		fmt.Sprintf("%d tuples", len(treeAnswer)))

	// Distributed algorithms over an in-process cluster.
	parts, err := gen.Partition(db, *m, *seed+1)
	if err != nil {
		fatalf("%v", err)
	}
	for _, algo := range []core.Algorithm{core.Baseline, core.DSUD, core.EDSUD, core.SDSUD} {
		cluster, err := core.NewLocalCluster(parts, dims, 0)
		if err != nil {
			fatalf("%v", err)
		}
		rep, err := core.Run(context.Background(), cluster, core.Options{Threshold: *q, Algorithm: algo})
		cluster.Close()
		if err != nil {
			fatalf("%v: %v", algo, err)
		}
		report(fmt.Sprintf("distributed %v", algo),
			uncertain.MembersEqual(rep.Skyline, want, 1e-9),
			fmt.Sprintf("%d tuples, %d transmitted", len(rep.Skyline), rep.Bandwidth.Tuples()))
	}

	// Vertical partitioning.
	sites, err := vertical.Split(db)
	if err != nil {
		fatalf("%v", err)
	}
	vAnswer, vStats, err := vertical.Query(sites, *q)
	if err != nil {
		fatalf("vertical: %v", err)
	}
	report("vertical VDSUD", uncertain.MembersEqual(vAnswer, want, 1e-9),
		fmt.Sprintf("%d tuples, %d entries", len(vAnswer), vStats.Entries()))

	// Monte Carlo statistical cross-check.
	if *samples > 0 {
		ests, err := montecarlo.SkyProbs(db, nil, *samples, *seed+2)
		if err != nil {
			fatalf("montecarlo: %v", err)
		}
		worst, disagreements := 0.0, 0
		margin := 5 * math.Sqrt(0.25/float64(*samples))
		for _, e := range ests {
			exact := db.SkyProb(e.Tuple, nil)
			if dev := math.Abs(e.Prob - exact); dev > worst {
				worst = dev
			}
			if math.Abs(exact-*q) > margin && (e.Prob >= *q) != (exact >= *q) {
				disagreements++
			}
		}
		tol := margin + 0.005
		report("Monte Carlo sampler",
			worst <= tol && disagreements == 0,
			fmt.Sprintf("max deviation %.4f (tol %.4f), %d membership disagreements", worst, tol, disagreements))
	}

	if failures > 0 {
		fmt.Printf("\n%d check(s) FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall checks passed")
}

func loadOrGenerate(path string, n, d int, values string, seed int64) (uncertain.DB, int) {
	if path != "" {
		db, dims, err := dataset.Load(path)
		if err != nil {
			fatalf("%v", err)
		}
		return db, dims
	}
	cfg := gen.Config{N: n, Dims: d, Probs: gen.UniformProb, Seed: seed}
	switch values {
	case "independent":
		cfg.Values = gen.Independent
	case "anticorrelated":
		cfg.Values = gen.Anticorrelated
	case "correlated":
		cfg.Values = gen.Correlated
	case "nyse":
		cfg.Values = gen.NYSE
		cfg.Dims = 0
	default:
		fatalf("unknown value distribution %q", values)
	}
	db, err := gen.Generate(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	return db, db.Dims()
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dsud-verify: "+format+"\n", args...)
	os.Exit(1)
}
