// Command dsud-bench regenerates the paper's evaluation figures. Each
// experiment prints one aligned text table per sub-figure, with the same
// series the paper plots.
//
// Usage:
//
//	dsud-bench -exp fig8 [-n 60000] [-queries 2] [-sites 60] [-seed 1]
//	dsud-bench -exp all -paper       # full 2M-tuple paper scale (slow)
//	dsud-bench -exp fig12 -trace-out phases.txt   # also dump phase timings
//
// Experiments: fig8 fig9 fig10 fig11 fig12 fig13 fig14 eq6, or "all".
// With -trace-out the progressiveness experiments (fig12/fig13) re-run each
// workload with a query trace attached and write per-phase timing tables
// (To-Server, Feedback-Select, Server-Delivery, Local-Pruning) to the file.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id ("+strings.Join(experiments.IDs(), ", ")+", or all)")
		n       = flag.Int("n", experiments.DefaultScale.N, "global cardinality N")
		queries = flag.Int("queries", experiments.DefaultScale.Queries, "repetitions to average")
		sites   = flag.Int("sites", 0, "override default site count (0 = paper default 60)")
		seed    = flag.Int64("seed", 1, "generation seed")
		paper   = flag.Bool("paper", false, "use the paper's full Table 3 scale (N=2,000,000, 10 queries)")
		format  = flag.String("format", "table", "output format: table|csv")

		traceOut  = flag.String("trace-out", "", "write per-phase timing tables for fig12/fig13 runs to this file")
		benchJSON = flag.String("bench-json", "BENCH_dsud.json", "write a machine-readable per-algorithm cost summary (wall time, tuples, wire bytes over loopback TCP) to this file (empty = off)")
	)
	flag.Parse()
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}

	scale := experiments.Scale{N: *n, Queries: *queries, Seed: *seed, Sites: *sites}
	if *paper {
		scale = experiments.PaperScale
		scale.Sites = *sites
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}

	var traceFile *os.File
	if *traceOut != "" {
		var err error
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsud-bench: trace-out: %v\n", err)
			os.Exit(1)
		}
		defer traceFile.Close()
	}

	for _, id := range ids {
		start := time.Now()
		figs, err := experiments.Run(ctx, id, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsud-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, fig := range figs {
			var err error
			if *format == "csv" {
				err = fig.RenderCSV(os.Stdout)
			} else {
				err = fig.Render(os.Stdout)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "dsud-bench: render: %v\n", err)
				os.Exit(1)
			}
		}
		if *format != "csv" {
			fmt.Printf("(%s completed in %v at N=%d, %d repetition(s))\n\n", id, time.Since(start).Round(time.Millisecond), scale.N, scale.Queries)
		}
		if traceFile != nil && (id == "fig12" || id == "fig13") {
			tables, err := experiments.TracePhases(ctx, id, scale)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dsud-bench: %s trace: %v\n", id, err)
				os.Exit(1)
			}
			for _, table := range tables {
				if err := table.Render(traceFile); err != nil {
					fmt.Fprintf(os.Stderr, "dsud-bench: trace-out: %v\n", err)
					os.Exit(1)
				}
			}
			fmt.Printf("(%s phase-timing tables appended to %s)\n\n", id, *traceOut)
		}
	}

	if *benchJSON != "" {
		f, err := os.Create(*benchJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsud-bench: bench-json: %v\n", err)
			os.Exit(1)
		}
		if err := experiments.BenchSummary(ctx, scale, f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "dsud-bench: bench-json: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dsud-bench: bench-json: %v\n", err)
			os.Exit(1)
		}
		if *format != "csv" {
			fmt.Printf("(per-algorithm cost summary written to %s)\n", *benchJSON)
		}
	}
}
