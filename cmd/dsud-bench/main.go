// Command dsud-bench regenerates the paper's evaluation figures. Each
// experiment prints one aligned text table per sub-figure, with the same
// series the paper plots.
//
// Usage:
//
//	dsud-bench -exp fig8 [-n 60000] [-queries 2] [-sites 60] [-seed 1]
//	dsud-bench -exp all -paper       # full 2M-tuple paper scale (slow)
//	dsud-bench -exp fig12 -trace-out phases.txt   # also dump phase timings
//	dsud-bench -exp fig8 -profile-dir profiles    # CPU/heap/mutex profiles
//
// Experiments: fig8 fig9 fig10 fig11 fig12 fig13 fig14 eq6, or "all".
// With -trace-out the progressiveness experiments (fig12/fig13) re-run each
// workload with a query trace attached and write per-phase timing tables
// (To-Server, Feedback-Select, Server-Delivery, Local-Pruning) to the file.
//
// Every run also writes the schema-v1 BENCH_dsud.json artifact (see
// docs/BENCHMARKING.md): per-algorithm wall time, tuples, messages and
// real wire bytes over loopback TCP, as distributions over
// -bench-warmup + -bench-iters repeated runs. Compare two artifacts with
// dsud-benchdiff.
//
// With -profile-dir the process records cpu.pprof, heap.pprof and
// mutex.pprof into the directory, and query execution is wrapped in
// runtime/pprof labels so samples attribute to (algorithm, phase,
// query_id): `go tool pprof -tags profiles/cpu.pprof`.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	os.Exit(run())
}

// run carries the whole CLI so profile writers and other defers flush
// before the exit code is set (os.Exit skips defers).
func run() int {
	var (
		exp     = flag.String("exp", "", "experiment id ("+strings.Join(experiments.IDs(), ", ")+", or all)")
		n       = flag.Int("n", experiments.DefaultScale.N, "global cardinality N")
		queries = flag.Int("queries", experiments.DefaultScale.Queries, "repetitions to average")
		sites   = flag.Int("sites", 0, "override default site count (0 = paper default 60)")
		seed    = flag.Int64("seed", 1, "generation seed")
		paper   = flag.Bool("paper", false, "use the paper's full Table 3 scale (N=2,000,000, 10 queries)")
		format  = flag.String("format", "table", "output format: table|csv")

		traceOut    = flag.String("trace-out", "", "write per-phase timing tables for fig12/fig13 runs to this file")
		benchJSON   = flag.String("bench-json", "BENCH_dsud.json", "write the machine-readable per-algorithm cost artifact incl. the DSUD/e-DSUD progressiveness section (schema v1, see docs/BENCHMARKING.md) to this file (empty = off)")
		benchIters  = flag.Int("bench-iters", 5, "measured runs per algorithm behind each bench-json distribution")
		benchWarmup = flag.Int("bench-warmup", 1, "unmeasured warmup runs per algorithm before measuring (-1 = none)")
		benchCap    = flag.Int("bench-cap", experiments.DefaultBenchCap, "cardinality cap for the bench-json artifact (-n above this is clamped)")
		concurrency = flag.String("concurrency", "1,4,8", "comma-separated client counts for the bench-json transport throughput section (empty = skip the section)")
		profileDir  = flag.String("profile-dir", "", "write cpu.pprof/heap.pprof/mutex.pprof here; enables per-phase pprof labels")
	)
	flag.Parse()
	if *exp == "" {
		flag.Usage()
		return 2
	}

	if *profileDir != "" {
		stop, err := startProfiling(*profileDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsud-bench: profile-dir: %v\n", err)
			return 1
		}
		defer stop()
	}

	scale := experiments.Scale{N: *n, Queries: *queries, Seed: *seed, Sites: *sites}
	if *paper {
		scale = experiments.PaperScale
		scale.Sites = *sites
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}

	var traceFile *os.File
	if *traceOut != "" {
		var err error
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsud-bench: trace-out: %v\n", err)
			return 1
		}
		defer traceFile.Close()
	}

	for _, id := range ids {
		start := time.Now()
		figs, err := experiments.Run(ctx, id, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsud-bench: %s: %v\n", id, err)
			return 1
		}
		for _, fig := range figs {
			var err error
			if *format == "csv" {
				err = fig.RenderCSV(os.Stdout)
			} else {
				err = fig.Render(os.Stdout)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "dsud-bench: render: %v\n", err)
				return 1
			}
		}
		if *format != "csv" {
			fmt.Printf("(%s completed in %v at N=%d, %d repetition(s))\n\n", id, time.Since(start).Round(time.Millisecond), scale.N, scale.Queries)
		}
		if traceFile != nil && (id == "fig12" || id == "fig13") {
			tables, err := experiments.TracePhases(ctx, id, scale)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dsud-bench: %s trace: %v\n", id, err)
				return 1
			}
			for _, table := range tables {
				if err := table.Render(traceFile); err != nil {
					fmt.Fprintf(os.Stderr, "dsud-bench: trace-out: %v\n", err)
					return 1
				}
			}
			fmt.Printf("(%s phase-timing tables appended to %s)\n\n", id, *traceOut)
		}
	}

	if *benchJSON != "" {
		opts := experiments.BenchOptions{
			CapN:       *benchCap,
			Warmup:     *benchWarmup,
			Iterations: *benchIters,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "dsud-bench: "+format, args...)
			},
			SkipThroughput: *concurrency == "",
		}
		if *concurrency != "" {
			levels, err := parseConcurrency(*concurrency)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dsud-bench: -concurrency: %v\n", err)
				return 2
			}
			opts.Concurrency = levels
		}
		f, err := os.Create(*benchJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsud-bench: bench-json: %v\n", err)
			return 1
		}
		if err := experiments.BenchSummary(ctx, scale, opts, f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "dsud-bench: bench-json: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dsud-bench: bench-json: %v\n", err)
			return 1
		}
		if *format != "csv" {
			fmt.Printf("(per-algorithm cost artifact written to %s)\n", *benchJSON)
		}
	}
	return 0
}

// parseConcurrency parses a comma-separated list of positive client
// counts for the throughput section.
func parseConcurrency(s string) ([]int, error) {
	var levels []int
	for _, part := range strings.Split(s, ",") {
		var c int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &c); err != nil || c <= 0 {
			return nil, fmt.Errorf("bad client count %q (want positive integers, e.g. 1,4,8)", part)
		}
		levels = append(levels, c)
	}
	return levels, nil
}

// startProfiling begins CPU profiling into dir and flips on the
// per-phase pprof labels; the returned stop writes the heap and mutex
// profiles and closes everything.
func startProfiling(dir string) (stop func(), err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cpu, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, err
	}
	obs.SetProfiling(true)
	runtime.SetMutexProfileFraction(5)
	return func() {
		pprof.StopCPUProfile()
		cpu.Close()
		writeProfile(dir, "heap.pprof", func(f *os.File) error {
			runtime.GC() // materialise the live-heap numbers
			return pprof.WriteHeapProfile(f)
		})
		writeProfile(dir, "mutex.pprof", func(f *os.File) error {
			return pprof.Lookup("mutex").WriteTo(f, 0)
		})
		fmt.Fprintf(os.Stderr, "dsud-bench: profiles written to %s (inspect labels with `go tool pprof -tags %s`)\n",
			dir, filepath.Join(dir, "cpu.pprof"))
	}, nil
}

// writeProfile captures one named profile, reporting rather than failing
// on error: a missing mutex profile must not sink the benchmark run.
func writeProfile(dir, name string, write func(*os.File) error) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsud-bench: %s: %v\n", name, err)
		return
	}
	defer f.Close()
	if err := write(f); err != nil {
		fmt.Fprintf(os.Stderr, "dsud-bench: %s: %v\n", name, err)
	}
}
