# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check build vet test race bench bench-json bench-baseline benchdiff soak record replay verify examples figures clean

all: check

# The default gate: compile, vet, full test suite, then the race detector
# over the concurrency-heavy packages.
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# ./internal/obs/... covers the black-box recorder (internal/obs/transcript)
# alongside the rest of the observability tree.
race:
	$(GO) test -race ./internal/codec ./internal/obs/... ./internal/obs/transcript ./internal/transport ./internal/core ./internal/serve ./internal/stream ./internal/site ./internal/audit ./internal/experiments

# Full benchmark sweep (several minutes). Writes bench_output.txt.
bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Small statistical cost artifact (schema v1, 5 iterations/algorithm)
# at the smoke scale CI compares against. See docs/BENCHMARKING.md.
BENCH_SMOKE = -exp eq6 -n 2000 -sites 4 -queries 1
bench-json:
	$(GO) run ./cmd/dsud-bench $(BENCH_SMOKE) -bench-json BENCH_dsud.json

# Regenerate the committed smoke baseline (do this when a deliberate
# cost change lands; commit the result).
bench-baseline:
	$(GO) run ./cmd/dsud-bench $(BENCH_SMOKE) -bench-json testdata/bench-baseline.json

# Compare the latest artifact against the committed baseline with the
# CI thresholds (tight on counts, loose on cross-machine wall time, a
# loose floor on the mux-over-serial throughput speedup — locally the
# margin at 8 clients is >2x, but shared CI runners are noisy — the
# materialized-serving-over-mux floor, and the progressiveness gate on
# the deterministic bandwidth AUC).
benchdiff: bench-json
	$(GO) run ./cmd/dsud-benchdiff -time-threshold 10 -min-mux-speedup 1.5 -min-serve-speedup 5 -max-auc-regress 0.05 testdata/bench-baseline.json BENCH_dsud.json

# Short open-loop soak against self-hosted loopback sites with the
# online auditor sampling; merges the latency{p50,p95,p99} section into
# BENCH_dsud.json (see docs/OBSERVABILITY.md "Load, latency & SLOs").
soak:
	$(GO) run ./cmd/dsud-loadgen -self-host -n 2000 -sites 3 -rps 100 \
	  -duration 3s -iterations 3 -update-fraction 0.05 \
	  -audit-fraction 0.05 -max-error-rate 0.01 -artifact BENCH_dsud.json

# Record one query's complete coordinator<->site exchange into a
# black-box transcript under $(RECORD_DIR). By default this self-hosts
# two loopback site daemons; set RECORD_ADDRS=host:port,... to record
# against a live cluster instead. See docs/OBSERVABILITY.md, section
# "Record & replay".
RECORD_DIR ?= transcripts
RECORD_ADDRS ?=
record:
	@mkdir -p $(RECORD_DIR)
ifeq ($(RECORD_ADDRS),)
	$(GO) build -o bin/ ./cmd/dsud-gen ./cmd/dsud-site ./cmd/dsud-query ./cmd/dsud-replay
	@set -e; \
	tmp=$$(mktemp -d); \
	bin/dsud-gen -n 2000 -d 3 -m 2 -seed 7 -out $$tmp; \
	bin/dsud-site -data $$tmp/site-0.dsud -id 0 -addr 127.0.0.1:7811 & s0=$$!; \
	bin/dsud-site -data $$tmp/site-1.dsud -id 1 -addr 127.0.0.1:7812 & s1=$$!; \
	trap 'kill $$s0 $$s1 2>/dev/null; rm -rf $$tmp' EXIT; \
	sleep 1; \
	bin/dsud-query -addrs 127.0.0.1:7811,127.0.0.1:7812 -dims 3 -q 0.3 \
	  -record $(RECORD_DIR) -quiet
else
	$(GO) run ./cmd/dsud-query -addrs $(RECORD_ADDRS) -dims 3 -q 0.3 -record $(RECORD_DIR)
endif

# Replay the newest recorded transcript offline (no sites needed).
replay:
	$(GO) run ./cmd/dsud-replay $$(ls -t $(RECORD_DIR)/*.dstr | head -1)

# Cross-check every engine against every oracle.
verify:
	$(GO) run ./cmd/dsud-verify -n 2000 -values anticorrelated
	$(GO) run ./cmd/dsud-verify -n 2000 -values independent -q 0.5

# Run every example end to end.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hotels
	$(GO) run ./examples/stockmarket
	$(GO) run ./examples/updates
	$(GO) run ./examples/vertical
	$(GO) run ./examples/sensors
	$(GO) run ./examples/federation
	$(GO) run ./examples/distributed-stream

# Regenerate every paper figure at laptop scale (see EXPERIMENTS.md).
figures:
	$(GO) run ./cmd/dsud-bench -exp all

clean:
	rm -f bench_output.txt test_output.txt experiments_output.txt
	rm -f BENCH_dsud.json *.trace.json *.log
	rm -rf bin profiles transcripts
